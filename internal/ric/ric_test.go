package ric

import (
	"strings"
	"testing"
	"testing/quick"

	"ricjs/internal/bytecode"
	"ricjs/internal/ic"
	"ricjs/internal/parser"
	"ricjs/internal/profiler"
	"ricjs/internal/source"
	"ricjs/internal/vm"
)

// compile parses and compiles one script.
func compileSrc(t *testing.T, name, src string) *bytecode.Program {
	t.Helper()
	prog, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bc, err := bytecode.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bc
}

// initialRun executes src on a fresh VM and extracts a record.
func initialRun(t *testing.T, src string, cfg Config) (*vm.VM, *Record) {
	t.Helper()
	bc := compileSrc(t, "lib.js", src)
	v := vm.New(vm.Options{})
	if _, err := v.RunProgram(bc); err != nil {
		t.Fatalf("initial run: %v", err)
	}
	return v, Extract(v, "lib.js", cfg)
}

// reuseRun executes src with a Reuser built from rec.
func reuseRun(t *testing.T, src string, rec *Record) (*vm.VM, *Reuser) {
	t.Helper()
	bc := compileSrc(t, "lib.js", src)
	reuser := NewReuser(rec, &profiler.Counters{}, func(source.Site) *ic.Slot { return nil })
	v := vm.New(vm.Options{Hooks: reuser})
	// The VM and its hooks reference each other; complete the wiring.
	reuser.SetSlotResolver(v.SlotFor)
	reuser.prof = v.Prof
	if _, err := v.RunProgram(bc); err != nil {
		t.Fatalf("reuse run: %v", err)
	}
	return v, reuser
}

const pointLib = `
	function Point(x, y) { this.x = x; this.y = y; }
	Point.prototype.dot = function (o) { return this.x * o.x + this.y * o.y; };
	function Rect(w, h) { this.w = w; this.h = h; }
	Rect.prototype.area = function () { return this.w * this.h; };
	var acc = 0;
	var pts = [];
	for (var i = 0; i < 20; i++) pts.push(new Point(i, i + 1));
	for (var j = 0; j < 20; j++) acc += pts[j].x + pts[j].y;
	var r1 = new Rect(3, 4);
	var r2 = new Rect(5, 6);
	acc += r1.area() + r2.area() + pts[0].dot(pts[1]);
	print('acc', acc);
`

func TestExtractBasics(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	if rec.HCCount == 0 {
		t.Fatal("no hidden classes extracted")
	}
	if len(rec.SiteTOAST) == 0 {
		t.Fatal("no triggering sites extracted")
	}
	if len(rec.BuiltinTOAST) == 0 {
		t.Fatal("no builtin entries extracted")
	}
	if rec.Stats.DependentSlots == 0 {
		t.Fatal("no dependent slots extracted")
	}
	if err := rec.validateShape(); err != nil {
		t.Fatalf("extracted record invalid: %v", err)
	}
	// The instance-field loads (pts[j].x) must be dependents of the Point
	// hidden classes somewhere.
	found := false
	for _, deps := range rec.Deps {
		for _, d := range deps {
			if d.Desc.Kind == ic.KindLoadField {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no LoadField dependents recorded")
	}
}

func TestReuseReducesMisses(t *testing.T) {
	v1, rec := initialRun(t, pointLib, Config{})
	conventional := vmRun(t, pointLib) // fresh conventional reuse run
	v2, reuser := reuseRun(t, pointLib, rec)

	if v1.Output() != v2.Output() || conventional.Output() != v2.Output() {
		t.Fatalf("outputs differ:\ninitial: %q\nconventional: %q\nric: %q",
			v1.Output(), conventional.Output(), v2.Output())
	}

	convStats := conventional.Prof.Snapshot()
	ricStats := v2.Prof.Snapshot()
	if ricStats.ICMisses >= convStats.ICMisses {
		t.Fatalf("RIC misses (%d) must be below conventional misses (%d)",
			ricStats.ICMisses, convStats.ICMisses)
	}
	if ricStats.MissesSaved == 0 {
		t.Fatal("no misses were saved by preloaded entries")
	}
	if ricStats.Preloads == 0 || ricStats.Validations == 0 {
		t.Fatalf("preloads=%d validations=%d", ricStats.Preloads, ricStats.Validations)
	}
	if ricStats.TotalInstr() >= convStats.TotalInstr() {
		t.Fatalf("RIC instructions (%d) must be below conventional (%d)",
			ricStats.TotalInstr(), convStats.TotalInstr())
	}
	if reuser.ValidatedCount() == 0 {
		t.Fatal("no hidden classes validated")
	}
}

// vmRun executes src on a fresh conventional VM.
func vmRun(t *testing.T, src string) *vm.VM {
	t.Helper()
	bc := compileSrc(t, "lib.js", src)
	v := vm.New(vm.Options{})
	if _, err := v.RunProgram(bc); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDivergentControlFlowFailsValidationSafely(t *testing.T) {
	// Initial run takes the branch; reuse run does not (paper Figure 7(e)):
	// validation must fail for the branch-dependent shape, and execution
	// must stay correct.
	initialSrc := `
		var cond = true;
		var o = {};
		if (cond) o.x = 1;
		o.y = 2;
		print(o.y);
	`
	reuseSrc := `
		var cond = false;
		var o = {};
		if (cond) o.x = 1;
		o.y = 2;
		print(o.y);
	`
	_, rec := initialRun(t, initialSrc, Config{})
	v2, _ := reuseRun(t, reuseSrc, rec)
	if v2.Output() != "2\n" {
		t.Fatalf("output = %q", v2.Output())
	}
	s := v2.Prof.Snapshot()
	if s.ValFailures == 0 {
		t.Fatal("divergence must produce validation failures")
	}
}

func TestRecordFromDifferentProgramIsHarmless(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	other := `
		var cfg = {mode: 'fast', level: 3};
		print(cfg.mode, cfg.level);
	`
	v, _ := reuseRun(t, other, rec)
	if v.Output() != "fast 3\n" {
		t.Fatalf("output = %q", v.Output())
	}
}

func TestReuseEquivalenceOnRichProgram(t *testing.T) {
	src := `
		function Node(v) { this.v = v; this.next = null; }
		function List() { this.head = null; this.n = 0; }
		List.prototype.add = function (v) {
			var nd = new Node(v);
			nd.next = this.head;
			this.head = nd;
			this.n++;
			return this;
		};
		List.prototype.sum = function () {
			var s = 0;
			for (var nd = this.head; nd; nd = nd.next) s += nd.v;
			return s;
		};
		var l = new List();
		for (var i = 1; i <= 10; i++) l.add(i * i);
		print(l.sum(), l.n);
		var mixed = [{k: 1}, {k: 2, extra: true}, {j: 0, k: 3}];
		var total = 0;
		for (var m = 0; m < mixed.length; m++) total += mixed[m].k;
		print(total);
		try { null.x; } catch (e) { print('caught'); }
	`
	v1, rec := initialRun(t, src, Config{})
	v2, _ := reuseRun(t, src, rec)
	if v1.Output() != v2.Output() {
		t.Fatalf("outputs differ:\n%q\n%q", v1.Output(), v2.Output())
	}
	if v2.Prof.Snapshot().MissesSaved == 0 {
		t.Fatal("expected saved misses")
	}
}

func TestGlobalsExcludedByDefault(t *testing.T) {
	src := `
		var a = 1; var b = 2; var c = 3;
		function f() { return a + b + c; }
		print(f() + f());
	`
	_, rec := initialRun(t, src, Config{})
	for site := range rec.SiteTOAST {
		_ = site
	}
	// No builtin TOAST entry for global declarations.
	for name := range rec.BuiltinTOAST {
		if strings.HasPrefix(name, "global:") {
			t.Fatalf("global transition %q extracted despite globals disabled", name)
		}
	}
	// Reuse still works and classifies global misses as Global.
	v2, _ := reuseRun(t, src, rec)
	s := v2.Prof.Snapshot()
	if s.MissGlobal == 0 {
		t.Fatal("expected global-classified misses")
	}
}

func TestGlobalsAblationIncluded(t *testing.T) {
	src := `
		var a = 1; var b = 2;
		function f() { return a + b; }
		print(f());
	`
	_, rec := initialRun(t, src, Config{IncludeGlobals: true})
	found := false
	for name := range rec.BuiltinTOAST {
		if strings.HasPrefix(name, "global:") {
			found = true
		}
	}
	if !found {
		t.Fatal("globals ablation must extract global transitions")
	}
	v2, _ := reuseRun(t, src, rec)
	if v2.Output() != "3\n" {
		t.Fatalf("output = %q", v2.Output())
	}
}

func TestRejectedSitesClassifyHandlerMisses(t *testing.T) {
	// A method call through the prototype produces a context-dependent
	// LoadFromPrototype handler; its site must be rejected and its reuse
	// miss classified as a Handler miss.
	src := `
		function C() { this.f = 1; }
		C.prototype.m = function () { return this.f; };
		var c = new C();
		print(c.m() + c.m());
	`
	_, rec := initialRun(t, src, Config{})
	if len(rec.RejectedSites) == 0 {
		t.Fatal("prototype-method site must be rejected")
	}
	v2, _ := reuseRun(t, src, rec)
	if s := v2.Prof.Snapshot(); s.MissHandler == 0 {
		t.Fatal("expected Handler-classified misses in reuse run")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	data := rec.Encode()
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.HCCount != rec.HCCount ||
		len(back.SiteTOAST) != len(rec.SiteTOAST) ||
		len(back.BuiltinTOAST) != len(rec.BuiltinTOAST) ||
		len(back.RejectedSites) != len(rec.RejectedSites) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Stats, rec.Stats)
	}
	for site, pairs := range rec.SiteTOAST {
		got := back.SiteTOAST[site]
		if len(got) != len(pairs) {
			t.Fatalf("site %s pairs %d != %d", site, len(got), len(pairs))
		}
		for i := range pairs {
			if got[i] != pairs[i] {
				t.Fatalf("site %s pair %d: %+v != %+v", site, i, got[i], pairs[i])
			}
		}
	}
	for i := range rec.Deps {
		if len(back.Deps[i]) != len(rec.Deps[i]) {
			t.Fatalf("deps[%d] %d != %d", i, len(back.Deps[i]), len(rec.Deps[i]))
		}
		for j := range rec.Deps[i] {
			if back.Deps[i][j] != rec.Deps[i][j] {
				t.Fatalf("deps[%d][%d] differ", i, j)
			}
		}
	}
	// Deterministic encoding.
	if string(rec.Encode()) != string(data) {
		t.Fatal("encoding must be deterministic")
	}
	// A decoded record drives a reuse run identically.
	v2, _ := reuseRun(t, pointLib, back)
	if !strings.Contains(v2.Output(), "acc") {
		t.Fatalf("reuse with decoded record broken: %q", v2.Output())
	}
	if v2.Prof.Snapshot().MissesSaved == 0 {
		t.Fatal("decoded record saved no misses")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	data := rec.Encode()

	if _, err := Decode(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := Decode([]byte("NOTAREC0")); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated input must fail")
	}
	if _, err := Decode(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing bytes must fail")
	}
	// Flip bytes through the body; with the CRC32 trailer every single-byte
	// flip must be rejected outright, and decoding must never panic.
	for i := len(recordTag) + 1; i < len(data); i += 7 {
		mut := append([]byte{}, data...)
		mut[i] ^= 0x55
		if _, err := Decode(mut); err == nil {
			t.Fatalf("single-byte flip at %d slipped past the checksum", i)
		}
	}
}

func TestCorruptRecordDegradesGracefully(t *testing.T) {
	// Build a record whose dependent offsets are nonsense; the reuse run
	// must not preload them (handlerFits) and must produce correct output.
	_, rec := initialRun(t, pointLib, Config{})
	for i := range rec.Deps {
		for j := range rec.Deps[i] {
			rec.Deps[i][j].Desc.Offset = 1 << 20
		}
	}
	v2, _ := reuseRun(t, pointLib, rec)
	if !strings.Contains(v2.Output(), "acc") {
		t.Fatalf("output = %q", v2.Output())
	}
	if v2.Prof.Snapshot().MissesSaved != 0 {
		t.Fatal("corrupt handlers must not be preloaded")
	}
}

func TestValidatedAccessors(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	_, reuser := reuseRun(t, pointLib, rec)
	if reuser.Validated(-1) || reuser.Validated(rec.HCCount+5) {
		t.Fatal("out-of-range Validated must be false")
	}
	any := false
	for id := int32(0); id < rec.HCCount; id++ {
		if reuser.Validated(id) {
			any = true
		}
	}
	if !any {
		t.Fatal("no validated ids visible")
	}
}

// Property: reuse-run output always equals conventional output on randomly
// generated property-access programs (the paper's correctness claim).
func TestReuseEquivalenceProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	gen := func(ops []uint16) string {
		var b strings.Builder
		b.WriteString("var o1 = {}; var o2 = {}; var log = '';\n")
		for _, op := range ops {
			obj := "o1"
			if op&1 == 1 {
				obj = "o2"
			}
			name := names[int(op>>1)%len(names)]
			switch (op >> 4) % 3 {
			case 0:
				b.WriteString(obj + "." + name + " = " + objectsNum(op) + ";\n")
			case 1:
				b.WriteString("log += " + obj + "." + name + " + ',';\n")
			case 2:
				b.WriteString("if (" + obj + "." + name + ") log += 'T';\n")
			}
		}
		b.WriteString("print(log);\n")
		return b.String()
	}
	f := func(ops []uint16) bool {
		if len(ops) == 0 {
			return true
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		src := gen(ops)
		v1, rec := initialRun(t, src, Config{})
		v2, _ := reuseRun(t, src, rec)
		return v1.Output() == v2.Output()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func objectsNum(op uint16) string {
	return []string{"1", "2", "'s'", "true"}[int(op>>8)%4]
}

// Property: encode/decode round-trips synthetic records exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(nHC uint8, sites []uint16, builtins []uint8) bool {
		hcCount := int32(nHC%32) + 1
		rec := &Record{
			Script:        "p.js",
			HCCount:       hcCount,
			Deps:          make([][]DepEntry, hcCount),
			SiteTOAST:     map[source.Site][]Pair{},
			BuiltinTOAST:  map[string]int32{},
			RejectedSites: map[source.Site]bool{},
		}
		for i, s := range sites {
			site := source.At("p.js", uint32(s%50)+1, uint32(i)+1)
			rec.SiteTOAST[site] = []Pair{{In: int32(s)%hcCount - 1, Out: int32(s) % hcCount}}
			hcid := int32(s) % hcCount
			kind := ic.KindLoadField
			if s%3 == 1 {
				kind = ic.KindStoreField
			} else if s%3 == 2 {
				kind = ic.KindLoadArrayLength
			}
			rec.Deps[hcid] = append(rec.Deps[hcid], DepEntry{
				Site: site,
				Desc: ic.CIDescriptor{Kind: kind, Offset: int32(s % 7)},
			})
			if s%4 == 0 {
				rec.RejectedSites[site] = true
			}
		}
		for i, b := range builtins {
			rec.BuiltinTOAST[strings.Repeat("b", i%3+1)+string(rune('A'+b%26))] = int32(b) % hcCount
		}
		back, err := Decode(rec.Encode())
		if err != nil {
			return false
		}
		if back.HCCount != rec.HCCount || len(back.SiteTOAST) != len(rec.SiteTOAST) ||
			len(back.BuiltinTOAST) != len(rec.BuiltinTOAST) ||
			len(back.RejectedSites) != len(rec.RejectedSites) {
			return false
		}
		for i := range rec.Deps {
			if len(back.Deps[i]) != len(rec.Deps[i]) {
				return false
			}
			for j := range rec.Deps[i] {
				if back.Deps[i][j] != rec.Deps[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedHandlersParticipateInReuse(t *testing.T) {
	// Element accesses and constant-key named accesses produce
	// context-independent keyed handlers that the record carries and the
	// Reuse run preloads.
	src := `
		function Box(v) { this.v = v; }
		var boxes = [new Box(1), new Box(2), new Box(3)];
		var key = 'v';
		var s = 0;
		for (var i = 0; i < boxes.length; i++) s += boxes[i][key];
		print(s);
	`
	_, rec := initialRun(t, src, Config{})
	hasKeyed := false
	for _, deps := range rec.Deps {
		for _, d := range deps {
			if d.Kind.IsKeyed() {
				hasKeyed = true
				if _, err := d.Desc.Rebuild(); err != nil {
					t.Fatalf("keyed descriptor does not rebuild: %v", err)
				}
			}
		}
	}
	if !hasKeyed {
		t.Fatal("no keyed dependents extracted")
	}
	v2, _ := reuseRun(t, src, rec)
	if v2.Output() != "6\n" {
		t.Fatalf("output = %q", v2.Output())
	}
	if v2.Prof.Snapshot().MissesSaved == 0 {
		t.Fatal("keyed reuse saved no misses")
	}
}
