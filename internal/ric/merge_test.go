package ric

import (
	"testing"

	"ricjs/internal/ic"
	"ricjs/internal/source"
)

// makeRecord builds a small synthetic record for merge unit tests.
func makeRecord(label string, builtins map[string]int32, hcCount int32,
	sites map[source.Site][]Pair, deps map[int32][]DepEntry) *Record {
	r := &Record{
		Script:        label,
		HCCount:       hcCount,
		Deps:          make([][]DepEntry, hcCount),
		SiteTOAST:     map[source.Site][]Pair{},
		BuiltinTOAST:  map[string]int32{},
		RejectedSites: map[source.Site]bool{},
	}
	for k, v := range builtins {
		r.BuiltinTOAST[k] = v
	}
	for k, v := range sites {
		r.SiteTOAST[k] = v
	}
	for id, d := range deps {
		r.Deps[id] = d
	}
	return r
}

func TestMergeUnifiesBuiltins(t *testing.T) {
	siteA := source.At("a.js", 1, 1)
	siteB := source.At("b.js", 1, 1)
	// Both records root their transitions at the shared "EmptyObject"
	// builtin (id 0 in each).
	a := makeRecord("a.js", map[string]int32{"EmptyObject": 0}, 2,
		map[source.Site][]Pair{siteA: {{In: 0, Out: 1}}},
		map[int32][]DepEntry{1: {{Site: siteA, Desc: ic.CIDescriptor{Kind: ic.KindLoadField}}}})
	b := makeRecord("b.js", map[string]int32{"EmptyObject": 0}, 2,
		map[source.Site][]Pair{siteB: {{In: 0, Out: 1}}},
		map[int32][]DepEntry{1: {{Site: siteB, Desc: ic.CIDescriptor{Kind: ic.KindStoreField}}}})

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// EmptyObject unified: 2 + 2 classes collapse to 3 rows.
	if m.HCCount != 3 {
		t.Fatalf("HCCount = %d, want 3", m.HCCount)
	}
	emptyID, ok := m.BuiltinTOAST["EmptyObject"]
	if !ok {
		t.Fatal("EmptyObject entry lost")
	}
	// Both sites' pairs must reference the unified incoming id.
	for _, site := range []source.Site{siteA, siteB} {
		pairs := m.SiteTOAST[site]
		if len(pairs) != 1 || pairs[0].In != emptyID {
			t.Fatalf("site %v pairs = %+v, want In=%d", site, pairs, emptyID)
		}
		if pairs[0].Out == emptyID {
			t.Fatal("outgoing id collided with the builtin id")
		}
	}
	// The two outgoing classes stay distinct, each with its own dep.
	outA := m.SiteTOAST[siteA][0].Out
	outB := m.SiteTOAST[siteB][0].Out
	if outA == outB {
		t.Fatal("independent transitions must not unify")
	}
	if len(m.Deps[outA]) != 1 || m.Deps[outA][0].Site != siteA {
		t.Fatalf("deps[outA] = %+v", m.Deps[outA])
	}
	if len(m.Deps[outB]) != 1 || m.Deps[outB][0].Site != siteB {
		t.Fatalf("deps[outB] = %+v", m.Deps[outB])
	}
}

func TestMergeDeduplicatesOverlap(t *testing.T) {
	site := source.At("shared.js", 3, 7)
	dep := DepEntry{Site: source.At("shared.js", 9, 2), Desc: ic.CIDescriptor{Kind: ic.KindLoadField, Offset: 1}}
	mk := func() *Record {
		return makeRecord("shared.js", map[string]int32{"EmptyObject": 0}, 2,
			map[source.Site][]Pair{site: {{In: 0, Out: 1}}},
			map[int32][]DepEntry{1: {dep, dep}})
	}
	m, err := Merge(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	// Identical records merge to the original shape... except appended
	// rows are not unified (only builtins are), so HCCount is 3, but the
	// site's pair list and the dep lists must be deduplicated.
	if got := len(m.SiteTOAST[site]); got != 2 {
		// Two pairs: (empty, out1) and (empty, out2) — one per record's
		// appended row. Both are retained because the outgoing ids differ.
		t.Fatalf("pairs = %d, want 2", got)
	}
	for id := int32(0); id < m.HCCount; id++ {
		seen := map[DepEntry]bool{}
		for _, d := range m.Deps[id] {
			if seen[d] {
				t.Fatalf("duplicate dep %+v under id %d", d, id)
			}
			seen[d] = true
		}
	}
}

func TestMergeRejectedSitesUnion(t *testing.T) {
	s1, s2 := source.At("a.js", 1, 1), source.At("b.js", 2, 2)
	a := makeRecord("a.js", nil, 0, nil, nil)
	a.RejectedSites[s1] = true
	b := makeRecord("b.js", nil, 0, nil, nil)
	b.RejectedSites[s2] = true
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.RejectedSites[s1] || !m.RejectedSites[s2] {
		t.Fatalf("rejected sites not unioned: %+v", m.RejectedSites)
	}
	if m.Stats.RejectedSites != 2 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestMergeDeterministic(t *testing.T) {
	site := source.At("x.js", 1, 1)
	a := makeRecord("a.js", map[string]int32{"Math": 0, "Array": 1}, 3,
		map[source.Site][]Pair{site: {{In: -1, Out: 2}}}, nil)
	b := makeRecord("b.js", map[string]int32{"Array": 0}, 2,
		map[source.Site][]Pair{}, nil)
	m1, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if string(m1.Encode()) != string(m2.Encode()) {
		t.Fatal("merge must be deterministic")
	}
}

func TestMergedRecordEncodesAndValidates(t *testing.T) {
	_, recA := initialRun(t, "var o = {a: 1}; print(o.a);", Config{})
	_, recB := initialRun(t, "var p = {b: 2}; print(p.b);", Config{})
	m, err := Merge(recA, recB)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("merged record does not round trip: %v", err)
	}
	if back.HCCount != m.HCCount {
		t.Fatal("round trip changed HC count")
	}
}

func TestMergeErrorPaths(t *testing.T) {
	good := func() *Record {
		site := source.At("a.js", 1, 1)
		return makeRecord("a.js", map[string]int32{"EmptyObject": 0}, 2,
			map[source.Site][]Pair{site: {{In: 0, Out: 1}}},
			map[int32][]DepEntry{1: {{Site: site, Desc: ic.CIDescriptor{Kind: ic.KindLoadField}}}})
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Merge(); err == nil {
			t.Fatal("empty merge must fail")
		}
	})
	t.Run("nil-record", func(t *testing.T) {
		if _, err := Merge(good(), nil); err == nil {
			t.Fatal("nil record must fail, not panic")
		}
		if _, err := Merge(nil); err == nil {
			t.Fatal("single nil record must fail")
		}
	})
	t.Run("globals-conflict", func(t *testing.T) {
		g := good()
		g.IncludesGlobals = true
		if _, err := Merge(good(), g); err == nil {
			t.Fatal("IncludesGlobals conflict must fail")
		}
	})
	t.Run("builtin-id-exceeds-table", func(t *testing.T) {
		// A record claiming a builtin hidden class beyond its own table
		// used to drive the remap tables out of range and panic.
		bad := good()
		bad.BuiltinTOAST["Array"] = bad.HCCount + 3
		if _, err := Merge(good(), bad); err == nil {
			t.Fatal("out-of-range builtin id must fail, not panic")
		}
	})
	t.Run("toast-id-exceeds-table", func(t *testing.T) {
		bad := good()
		bad.SiteTOAST[source.At("a.js", 2, 2)] = []Pair{{In: -1, Out: bad.HCCount}}
		if _, err := Merge(good(), bad); err == nil {
			t.Fatal("out-of-range TOAST id must fail, not panic")
		}
	})
	t.Run("dep-rows-mismatch", func(t *testing.T) {
		bad := good()
		bad.Deps = bad.Deps[:1]
		if _, err := Merge(good(), bad); err == nil {
			t.Fatal("dep row count mismatch must fail")
		}
	})
	t.Run("same-label-records-stay-legal", func(t *testing.T) {
		// Two records carrying the same script label (two sessions of the
		// same library) are not a conflict: they merge with dedup.
		m, err := Merge(good(), good())
		if err != nil {
			t.Fatal(err)
		}
		if m.Script != "a.js+a.js" {
			t.Fatalf("merged label = %q", m.Script)
		}
	})
}

func TestReplayPreloadsIdempotent(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	v, reuser := reuseRun(t, pointLib, rec)
	preloadsAfterRun := v.Prof.Snapshot().Preloads
	// Replaying again must not add preloads: everything applicable was
	// applied (done-tracking) and duplicates are rejected anyway.
	reuser.ReplayPreloads()
	if got := v.Prof.Snapshot().Preloads; got != preloadsAfterRun {
		t.Fatalf("replay added preloads: %d -> %d", preloadsAfterRun, got)
	}
}
