package ric

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ricjs/internal/analysis"
	"ricjs/internal/objects"
	"ricjs/internal/vm"
)

// extractTypedPointRecord records the point fixture and attaches the
// typed-shape claims its static analysis justifies.
func extractTypedPointRecord(t *testing.T) (*Record, *analysis.Result) {
	t.Helper()
	res, prog := analyzePointFixture(t)
	v := vm.New(vm.Options{})
	if _, err := v.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	rec := Extract(v, "lib.js", Config{})
	rec.AttachTypedShapes(res)
	return rec, res
}

func TestTypedClaimsRoundTrip(t *testing.T) {
	rec, res := extractTypedPointRecord(t)
	if rec.Stats.TypedSlotClaims == 0 {
		t.Fatal("fixture produced no typed-shape claims; the typed section is untested")
	}
	data := rec.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("typed record does not decode: %v", err)
	}
	if !reflect.DeepEqual(back.TypedSlots, rec.TypedSlots) {
		t.Fatalf("typed claims changed across encode/decode:\nout: %v\nin:  %v", rec.TypedSlots, back.TypedSlots)
	}
	if back.Stats.TypedSlotClaims != rec.Stats.TypedSlotClaims {
		t.Fatalf("claim count %d after decode, want %d", back.Stats.TypedSlotClaims, rec.Stats.TypedSlotClaims)
	}
	if again := back.Encode(); !bytes.Equal(again, data) {
		t.Fatal("decode → encode of a typed record is not byte-identical")
	}
	// The fourth verification layer recomputes every claim from bytecode;
	// a truthful record must pass.
	if err := back.VerifyTyped(res); err != nil {
		t.Fatalf("truthful typed record rejected: %v", err)
	}
}

// TestVerifyTypedRejectsForgedClaim flips one claim to a type the analysis
// cannot justify: the offline recomputation must catch it, because a Reuse
// run trusting it would serve unboxed reads of a differently-typed slot.
func TestVerifyTypedRejectsForgedClaim(t *testing.T) {
	rec, res := extractTypedPointRecord(t)
	forged, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for id, claims := range forged.TypedSlots {
		for i, c := range claims {
			// Swap the claim for a different concrete type: numbers become
			// strings, everything else becomes boolean.
			if c.Type == objects.SlotTypeString {
				claims[i].Type = objects.SlotTypeBoolean
			} else {
				claims[i].Type = objects.SlotTypeString
			}
			changed = true
			_ = id
			break
		}
		if changed {
			break
		}
	}
	if !changed {
		t.Fatal("no claim to forge")
	}
	if err := forged.VerifyTyped(res); err == nil {
		t.Fatal("forged typed claim accepted by VerifyTyped")
	} else {
		t.Logf("rejected: %v", err)
	}
}

// TestVerifyTypedRejectsClaimOnMissingSlot forges a claim for a slot
// offset past the resolved shape's layout.
func TestVerifyTypedRejectsClaimOnMissingSlot(t *testing.T) {
	rec, res := extractTypedPointRecord(t)
	forged, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for id := range forged.TypedSlots {
		forged.TypedSlots[id] = append(forged.TypedSlots[id],
			SlotClaim{Offset: 1000, Type: objects.SlotTypeFloat})
		break
	}
	if err := forged.VerifyTyped(res); err == nil {
		t.Fatal("claim on a nonexistent slot accepted by VerifyTyped")
	}
}

// TestDecodeRejectsBadTypeTag hand-crafts a v5 record whose typed-shape
// section carries a tag outside the valid claim range: the decoder must
// reject it (⊤ and ⊥ are not claims a record may make, and unknown tags
// could alias future lattice elements).
func TestDecodeRejectsBadTypeTag(t *testing.T) {
	for _, tag := range []byte{0 /* ⊤ */, 7 /* ⊥ */, 200} {
		var b bytes.Buffer
		b.Write(recordTag)
		b.WriteByte(recordVersion)
		uv := func(v uint64) {
			var tmp [binary.MaxVarintLen64]byte
			b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		}
		uv(0) // label: empty string
		uv(0) // flags
		uv(0) // script table: empty
		uv(0) // symbol table: empty
		uv(1) // one hidden class
		uv(0) // ... with no dependents
		uv(0) // site TOAST: empty
		uv(0) // builtin TOAST: empty
		uv(0) // rejected sites: empty
		uv(1) // one typed shape
		uv(0) // ... HCID 0
		uv(1) // ... one claim
		uv(0) // ... at offset 0
		b.WriteByte(tag)
		var trailer [recordTrailerLen]byte
		binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(b.Bytes()))
		b.Write(trailer[:])
		if _, err := Decode(b.Bytes()); err == nil {
			t.Fatalf("type tag %d was accepted", tag)
		}
	}
}

// TestReuseAppliesTypedClaims runs the full pipeline: an Initial run's
// record carries typed claims; a Reuse run validates the hidden classes,
// applies the claims, and serves monomorphic loads through the typed fast
// path — with output identical to a conventional run.
func TestReuseAppliesTypedClaims(t *testing.T) {
	rec, _ := extractTypedPointRecord(t)
	if rec.Stats.TypedSlotClaims == 0 {
		t.Fatal("record carries no typed claims")
	}
	conventional := vm.New(vm.Options{})
	if _, err := conventional.RunProgram(compileSrc(t, "lib.js", pointFixtureSrc)); err != nil {
		t.Fatal(err)
	}
	v2, _ := reuseRun(t, pointFixtureSrc, rec)
	if got, want := v2.Output(), conventional.Output(); got != want {
		t.Fatalf("typed reuse run diverged: %q vs %q", got, want)
	}
	if hits := v2.Prof.Snapshot().TypedFastHits; hits == 0 {
		t.Fatal("reuse run served no typed fast hits despite claims in the record")
	}
	if hits := conventional.Prof.Snapshot().TypedFastHits; hits != 0 {
		t.Fatalf("conventional run recorded %d typed hits", hits)
	}
}

// TestMergeTypedClaims: appended rows keep their claims; unified builtin
// rows keep a claim only when every contributing record makes it.
func TestMergeTypedClaims(t *testing.T) {
	rec, _ := extractTypedPointRecord(t)

	t.Run("self-merge preserves claims", func(t *testing.T) {
		merged, err := Merge(rec, rec)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Stats.TypedSlotClaims == 0 {
			t.Fatal("self-merge dropped every typed claim")
		}
	})

	t.Run("claimless partner drops unified claims", func(t *testing.T) {
		// A second record with the same builtins but no typed section: its
		// rows unify with rec's builtin rows and veto their claims (absent
		// claim = ⊤ from that contributor).
		_, other := initialRun(t, "var q = {zzz: 'str'}; print(q.zzz);", Config{})
		if len(other.TypedSlots) != 0 {
			t.Fatal("claimless partner unexpectedly carries claims")
		}
		merged, err := Merge(rec, other)
		if err != nil {
			t.Fatal(err)
		}
		for name, id := range merged.BuiltinTOAST {
			if _, ok := other.BuiltinTOAST[name]; !ok {
				continue // not unified; may keep claims
			}
			if len(merged.TypedSlots[id]) != 0 {
				t.Fatalf("builtin %q kept typed claims after merging with a claimless record", name)
			}
		}
		if err := merged.validateShape(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRegenerateTypedFixtures rewrites the committed typed fixtures from
// the point fixture source. Extraction and encoding are deterministic, so
// regeneration is reproducible; run it after a wire-format change:
//
//	RIC_REGEN_FIXTURES=1 go test ./internal/ric/ -run TestRegenerateTypedFixtures
func TestRegenerateTypedFixtures(t *testing.T) {
	if os.Getenv("RIC_REGEN_FIXTURES") == "" {
		t.Skip("set RIC_REGEN_FIXTURES=1 to regenerate committed typed fixtures")
	}
	rec, _ := extractTypedPointRecord(t)
	if rec.Stats.TypedSlotClaims == 0 {
		t.Fatal("fixture source yields no typed claims")
	}
	data := rec.Encode()
	write := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join("testdata", name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Accepted by all four riclint layers.
	write("point-typed.ric", data)
	// Checksum-valid, decode-valid, but one claim lies about the slot's
	// type: only the fourth layer (VerifyTyped) can reject it.
	forged, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	flipOneClaim(t, forged)
	write("point-forgedclaim.ric", forged.Encode())
	// Invalid type tag: rejected at decode (layer 1).
	bad, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range typedIDsSorted(bad) {
		bad.TypedSlots[id][0].Type = objects.SlotType(200)
		break
	}
	write("point-badtype.ric", bad.Encode())
}

// flipOneClaim swaps the first claim (in deterministic order) for a
// different concrete type the analysis cannot justify.
func flipOneClaim(t *testing.T, rec *Record) {
	t.Helper()
	for _, id := range typedIDsSorted(rec) {
		c := &rec.TypedSlots[id][0]
		if c.Type == objects.SlotTypeString {
			c.Type = objects.SlotTypeBoolean
		} else {
			c.Type = objects.SlotTypeString
		}
		return
	}
	t.Fatal("no claim to forge")
}

func typedIDsSorted(rec *Record) []int32 {
	ids := make([]int32, 0, len(rec.TypedSlots))
	for id := range rec.TypedSlots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestAcceptsCommittedTypedFixture pins the committed v5 fixture: it
// carries claims and survives all four offline layers.
func TestAcceptsCommittedTypedFixture(t *testing.T) {
	rec := loadFixture(t, "point-typed.ric")
	if rec.Stats.TypedSlotClaims == 0 {
		t.Fatal("committed typed fixture carries no claims")
	}
	res, prog := analyzePointFixture(t)
	if err := rec.Validate(prog); err != nil {
		t.Fatalf("layer 2 rejected committed fixture: %v", err)
	}
	if err := rec.VerifyStatic(res); err != nil {
		t.Fatalf("layer 3 rejected committed fixture: %v", err)
	}
	if err := rec.VerifyTyped(res); err != nil {
		t.Fatalf("layer 4 rejected committed fixture: %v", err)
	}
}

// TestRejectsCommittedTypedLies pins the two lying fixtures: the forged
// claim survives decode and layers 2–3, and only VerifyTyped catches it;
// the invalid tag never makes it past decode.
func TestRejectsCommittedTypedLies(t *testing.T) {
	res, prog := analyzePointFixture(t)

	forged := loadFixture(t, "point-forgedclaim.ric")
	if err := forged.Validate(prog); err != nil {
		t.Fatalf("forged-claim fixture should pass layer 2, got: %v", err)
	}
	if err := forged.VerifyStatic(res); err != nil {
		t.Fatalf("forged-claim fixture should pass layer 3, got: %v", err)
	}
	if err := forged.VerifyTyped(res); err == nil {
		t.Fatal("forged-claim fixture accepted by VerifyTyped")
	}

	data, err := os.ReadFile(filepath.Join("testdata", "point-badtype.ric"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("bad-type-tag fixture was accepted by Decode")
	}
}
