package ric

import (
	"fmt"
	"sort"

	"ricjs/internal/analysis"
	"ricjs/internal/ic"
	"ricjs/internal/objects"
	"ricjs/internal/source"
)

// VerifyStatic cross-checks the record's semantic content — the HC
// validation table, the triggering-site table, and the dependent-site
// handler offsets — against a static shape analysis of the scripts,
// without executing anything. It complements Decode (integrity) and
// Validate (site existence): a record can pass both and still lie about
// *which* hidden class a site observes or *where* a field lives, which is
// exactly what a remapped or offset-skewed record does. Such a record
// degrades a Reuse run at best and must be caught before it is trusted.
//
// The check resolves every hidden-class ID the record can justify to a
// static shape: builtin-keyed TOAST entries resolve through the mirrored
// startup graph, rootless site entries through constructor roots, and
// (in, out) pairs by following the static transition edge named by the
// triggering store site. Resolution is conservative — IDs the analysis
// cannot pin down (keyed-store lineages, ⊤ sites, uncovered scripts) are
// skipped, never rejected — so a truthful record always passes, matching
// Validate's policy for merged records that span unloaded scripts.
//
// For every resolved ID the record's claims are then recomputed from the
// static shape: field handlers must name a property the shape stores at
// exactly the recorded offset, element/length handlers must sit on an
// Array-rooted lineage, and every (site, class) dependency must be inside
// the site's predicted hidden-class set. If the analysis widened to global
// ⊤ it can certify nothing and the record is accepted vacuously.
func (r *Record) VerifyStatic(res *analysis.Result) error {
	if res == nil || res.GlobalTop() {
		return nil
	}

	shapes, err := r.resolveShapes(res)
	if err != nil {
		return err
	}

	for hcid, deps := range r.Deps {
		s := shapes[hcid]
		if s == nil {
			continue
		}
		for _, d := range deps {
			if err := checkDepAgainstShape(int32(hcid), d, s); err != nil {
				return err
			}
			if !res.Covered(d.Site.Script) {
				continue
			}
			pred := res.At(d.Site)
			if pred == nil {
				return fmt.Errorf("ric: HCID %d dependent %s: no such access site in analyzed scripts (stale record?)", hcid, d.Site)
			}
			if pred.Dead {
				return fmt.Errorf("ric: HCID %d dependent %s: statically unreachable, yet the record claims it observed a class", hcid, d.Site)
			}
			if pred.Kind != d.Kind || pred.Name != d.Name {
				return fmt.Errorf("ric: HCID %d dependent %s: record says %s %q, analysis sees %s %q",
					hcid, d.Site, d.Kind, d.Name, pred.Kind, pred.Name)
			}
			if !pred.Top && !predContains(pred, s) {
				return fmt.Errorf("ric: HCID %d dependent %s: class %s is outside the predicted set %v (remapped record?)",
					hcid, d.Site, s, pred)
			}
		}
	}
	return nil
}

// resolveShapes maps every hidden-class ID the record can statically
// justify to its analysis shape — the shared resolution step behind
// VerifyStatic, VerifyTyped, and extraction-time claim attachment
// (AttachTypedShapes). Unresolvable IDs stay nil (conservative); an ID
// resolving to two distinct shapes is an inconsistency error.
func (r *Record) resolveShapes(res *analysis.Result) ([]*analysis.Shape, error) {
	shapes := make([]*analysis.Shape, r.HCCount)
	assign := func(id int32, s *analysis.Shape, how string) error {
		if s == nil || id < 0 || int(id) >= len(shapes) {
			return nil
		}
		if shapes[id] == nil {
			shapes[id] = s
			return nil
		}
		if shapes[id] != s {
			return fmt.Errorf("ric: HCID %d resolves to both %s and %s (%s): HC table inconsistent with static transition graph",
				id, shapes[id], s, how)
		}
		return nil
	}

	// Builtin-keyed TOAST rows anchor resolution: startup is deterministic,
	// so every builtin name the analysis knows maps to exactly one shape.
	builtinNames := make([]string, 0, len(r.BuiltinTOAST))
	for name := range r.BuiltinTOAST {
		builtinNames = append(builtinNames, name)
	}
	sort.Strings(builtinNames)
	for _, name := range builtinNames {
		s := res.Builtin(name)
		if s == nil {
			s = res.ShapeForCreator(objects.Creator{Builtin: name}.String())
		}
		if err := assign(r.BuiltinTOAST[name], s, "builtin "+name); err != nil {
			return nil, err
		}
	}

	sites := make([]source.Site, 0, len(r.SiteTOAST))
	for site := range r.SiteTOAST {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].String() < sites[j].String() })

	// Site-keyed rows chain off already-resolved classes, so iterate to a
	// fixpoint: the pair giving an ID its shape may be visited after the
	// pair consuming it.
	for progress := true; progress; {
		progress = false
		for _, site := range sites {
			if !res.Covered(site.Script) {
				continue
			}
			pred := res.At(site)
			if pred != nil && pred.Dead {
				return nil, fmt.Errorf("ric: TOAST site %s: statically unreachable, yet the record claims it created hidden classes", site)
			}
			for _, p := range r.SiteTOAST[site] {
				before := shapes[p.Out]
				switch {
				case p.In < 0:
					// Rootless creation: a constructor's instance root,
					// keyed by the declaring function's site.
					root := res.RootByCreator(objects.Creator{Site: site}.String())
					if err := assign(p.Out, root, fmt.Sprintf("root at %s", site)); err != nil {
						return nil, err
					}
				case shapes[p.In] != nil:
					if pred == nil || pred.Name == "" {
						continue // keyed store: no static identity
					}
					if !pred.Top && !predContains(pred, shapes[p.In]) {
						return nil, fmt.Errorf("ric: TOAST site %s: incoming class %s is outside the predicted set %v",
							site, shapes[p.In], pred)
					}
					next, ok := shapes[p.In].TransitionTo(pred.Name)
					if !ok {
						if pred.Top {
							continue // receiver unknown: edge may be real
						}
						return nil, fmt.Errorf("ric: TOAST site %s: no static transition %s --%q--> (stale or lying record)",
							site, shapes[p.In], pred.Name)
					}
					if err := assign(p.Out, next, fmt.Sprintf("transition at %s", site)); err != nil {
						return nil, err
					}
				}
				if shapes[p.Out] != before {
					progress = true
				}
			}
		}
	}
	return shapes, nil
}

func predContains(p *analysis.SitePrediction, s *analysis.Shape) bool {
	for _, ps := range p.Shapes {
		if ps == s {
			return true
		}
	}
	return false
}

// checkDepAgainstShape recomputes a dependent handler's claims from the
// static shape its hidden class resolved to. This is the offline analog of
// handlerFits: offsets must match the shape's layout, and element/length
// handlers must sit on an Array lineage.
func checkDepAgainstShape(hcid int32, d DepEntry, s *analysis.Shape) error {
	checkField := func(name string) error {
		// A handler may legitimately be cached against the receiver's
		// pre-materialization class: a load miss that creates the property
		// (function .prototype) installs the post-transition offset keyed on
		// the class it observed. Accept the claim if either the shape itself
		// or its one-step transition target for the field stores it at the
		// recorded offset; the runtime preload check (handlerFits) treats
		// the stale-keyed variant as a harmless no-op.
		off, ok := s.Offset(name)
		if !ok {
			if next, edge := s.TransitionTo(name); edge {
				off, ok = next.Offset(name)
			}
		}
		if !ok {
			return fmt.Errorf("ric: HCID %d dependent %s: handler reads %q but shape %s has no such field (remapped record?)",
				hcid, d.Site, name, s)
		}
		if int32(off) != d.Desc.Offset {
			return fmt.Errorf("ric: HCID %d dependent %s: handler offset %d for %q, shape %s stores it at %d",
				hcid, d.Site, d.Desc.Offset, name, s, off)
		}
		return nil
	}
	switch d.Desc.Kind {
	case ic.KindLoadField, ic.KindStoreField:
		return checkField(d.Name)
	case ic.KindLoadArrayLength, ic.KindLoadElement, ic.KindStoreElement:
		if !arrayLineage(s) {
			return fmt.Errorf("ric: HCID %d dependent %s: %s handler on non-array shape %s",
				hcid, d.Site, d.Desc.Kind, s)
		}
	case ic.KindKeyedNamed:
		if d.Desc.Inner == ic.KindLoadField || d.Desc.Inner == ic.KindStoreField {
			return checkField(d.Desc.Name)
		}
		if d.Desc.Inner == ic.KindLoadArrayLength && !arrayLineage(s) {
			return fmt.Errorf("ric: HCID %d dependent %s: keyed length handler on non-array shape %s",
				hcid, d.Site, s)
		}
	}
	return nil
}

// arrayLineage reports whether a shape descends from the builtin Array
// root.
func arrayLineage(s *analysis.Shape) bool {
	root := s
	for root.Parent != nil {
		root = root.Parent
	}
	return root.Creators[objects.Creator{Builtin: "Array"}.String()]
}
