package ric

import (
	"testing"

	"ricjs/internal/ic"
	"ricjs/internal/source"
)

// TestFigure7Walkthrough replays the paper's running example (Figures 4
// and 7) and asserts the extracted ICRecord contains exactly the
// structures the paper draws:
//
//	1: var o = {};          // creates the built-in empty-object shape (HC A)
//	2: if (...) o.x = 1;    // S1 — not taken in the Initial run
//	3: o.y = 2;             // S2 — triggering site, transitions A -> B
//	4: print(o.y);          // L1 — dependent site, CI handler H2
//
// Extraction must produce: a TOAST entry for the empty-object builtin; a
// TOAST entry for S2 with one (incoming=A, outgoing=B) pair; an HCVT
// dependent list for B containing (L1, LoadField) — the paper's (L1, H2);
// and S2 itself rejected as a dependent because its handler (H1, a store
// transition embedding hidden class B) is context-dependent.
func TestFigure7Walkthrough(t *testing.T) {
	src := `var o = {};
if (false) o.x = 1;
o.y = 2;
print(o.y);
`
	_, rec := initialRun(t, src, Config{})

	// The "Empty Obj." builtin entry (paper Figure 7(c), TOAST row 1).
	emptyID, ok := rec.BuiltinTOAST["EmptyObject"]
	if !ok {
		t.Fatal("TOAST lacks the Empty Obj. entry")
	}

	// S2 is the store at line 3; site identity anchors at the property
	// name (`y`, column 3).
	s2 := source.At("lib.js", 3, 3)
	pairs, ok := rec.SiteTOAST[s2]
	if !ok {
		t.Fatalf("TOAST lacks the S2 entry; site-keyed entries: %v", siteKeys(rec))
	}
	if len(pairs) != 1 {
		t.Fatalf("S2 has %d pairs, want 1 (monomorphic in the Initial run)", len(pairs))
	}
	if pairs[0].In != emptyID {
		t.Fatalf("S2 incoming HCID = %d, want the empty-object id %d", pairs[0].In, emptyID)
	}
	outgoingB := pairs[0].Out
	if outgoingB == emptyID {
		t.Fatal("S2 outgoing must be a fresh hidden class")
	}

	// S1 never executed: no TOAST entry anywhere on line 2.
	for site := range rec.SiteTOAST {
		if site.Pos.Line == 2 {
			t.Fatalf("untaken branch must not produce a TOAST entry, got %v", site)
		}
	}

	// HCVT row for B lists exactly one dependent: L1 (the load at line 4)
	// with the context-independent handler H2 = LoadField[0].
	deps := rec.Deps[outgoingB]
	if len(deps) != 1 {
		t.Fatalf("HCVT row for B has %d dependents, want 1 (L1): %+v", len(deps), deps)
	}
	l1 := deps[0]
	if l1.Site.Pos.Line != 4 {
		t.Fatalf("dependent site at %v, want line 4 (L1)", l1.Site)
	}
	if l1.Name != "y" || l1.Kind != ic.AccessLoad {
		t.Fatalf("dependent = %+v, want load of y", l1)
	}
	if l1.Desc.Kind != ic.KindLoadField || l1.Desc.Offset != 0 {
		t.Fatalf("dependent handler = %+v, want LoadField at offset 0 (the paper's H2)", l1.Desc)
	}

	// S2's own handler (H1) is a store transition embedding hidden class
	// B — context-dependent, so S2 is a rejected site (paper: "the
	// handler for that site is H1 ... not context-independent").
	if !rec.RejectedSites[s2] {
		t.Fatal("S2 must be rejected as a dependent (its handler embeds a hidden class)")
	}

	// And the reuse semantics of Figure 7(d): same control flow validates
	// B and averts exactly the L1 miss.
	v2, reuser := reuseRun(t, src, rec)
	if v2.Output() != "2\n" {
		t.Fatalf("output = %q", v2.Output())
	}
	if !reuser.Validated(emptyID) || !reuser.Validated(outgoingB) {
		t.Fatal("both hidden classes must validate when control flow matches")
	}
	if v2.Prof.Snapshot().MissesSaved != 1 {
		t.Fatalf("misses averted = %d, want exactly 1 (L1)", v2.Prof.Snapshot().MissesSaved)
	}

	// Figure 7(e): divergent control flow (branch taken). B cannot be
	// validated through the (A, B) pair because the incoming class at S2
	// is now {x}; L1 misses normally; execution stays correct.
	divergent := `var o = {};
if (true) o.x = 1;
o.y = 2;
print(o.y);
`
	v3, _ := reuseRun(t, divergent, rec)
	if v3.Output() != "2\n" {
		t.Fatalf("divergent output = %q", v3.Output())
	}
	if v3.Prof.Snapshot().MissesSaved != 0 {
		t.Fatal("divergent run must avert nothing at L1")
	}
	if v3.Prof.Snapshot().ValFailures == 0 {
		t.Fatal("divergent run must record validation failures")
	}
}

func siteKeys(r *Record) []source.Site {
	out := make([]source.Site, 0, len(r.SiteTOAST))
	for s := range r.SiteTOAST {
		out = append(out, s)
	}
	return out
}
