package ric

import (
	"testing"

	"ricjs/internal/analysis"
	"ricjs/internal/ic"
	"ricjs/internal/vm"
)

// staticFeedSrc extends the point fixture with a function that is never
// called: the field load inside it is statically dead.
const staticFeedSrc = pointFixtureSrc + "\n\tfunction unusedHelper(o) { return o.q; }\n"

// reuseRunStatic executes src with a Reuser fed the given analysis result,
// following the Engine wiring order: hooks at VM construction, Attach, then
// SetAnalysis before any script runs.
func reuseRunStatic(t *testing.T, src string, rec *Record, res *analysis.Result) (*vm.VM, *Reuser) {
	t.Helper()
	bc := compileSrc(t, "lib.js", src)
	reuser := NewReuser(rec, nil, nil)
	v := vm.New(vm.Options{Hooks: reuser})
	reuser.Attach(v)
	reuser.SetAnalysis(res)
	if _, err := v.RunProgram(bc); err != nil {
		t.Fatalf("reuse run: %v", err)
	}
	return v, reuser
}

// TestStaticPrefilterNeutralOnFreshRecord: a fresh record contains only
// dependencies the program actually exercises, so the prefilter must not
// drop any of them — reuse statistics are identical with and without it,
// and only the analysis verdict gauges differ.
func TestStaticPrefilterNeutralOnFreshRecord(t *testing.T) {
	_, rec := initialRun(t, staticFeedSrc, Config{})
	res := analysis.Analyze(compileSrc(t, "lib.js", staticFeedSrc))
	if res.GlobalTop() {
		t.Fatal("analysis widened to global ⊤; prefilter test is vacuous")
	}

	plainVM, _ := reuseRun(t, staticFeedSrc, rec)
	staticVM, _ := reuseRunStatic(t, staticFeedSrc, rec, res)
	plain, static := plainVM.Prof.Snapshot(), staticVM.Prof.Snapshot()

	if static.StaticFilteredPreloads != 0 {
		t.Errorf("prefilter dropped %d preloads from a fresh record; soundness says it must drop none",
			static.StaticFilteredPreloads)
	}
	if static.Preloads != plain.Preloads || static.MissesSaved != plain.MissesSaved {
		t.Errorf("prefilter changed reuse effectiveness: preloads %d vs %d, misses saved %d vs %d",
			static.Preloads, plain.Preloads, static.MissesSaved, plain.MissesSaved)
	}
	if static.StaticDeadSites == 0 {
		t.Error("unusedHelper's field load should be flagged as a dead site in Stats()")
	}
	if plain.StaticDeadSites != 0 || plain.StaticFilteredPreloads != 0 {
		t.Error("run without a prefilter must report zero static counters")
	}
}

// TestStaticPrefilterDropsDeadSiteDep plants a dependency on a statically
// dead site into an otherwise truthful record (as a stale record from an
// older program version would carry) and checks the prefilter skips it on
// static evidence alone, before the slot lookup and handler rebuild.
func TestStaticPrefilterDropsDeadSiteDep(t *testing.T) {
	_, rec := initialRun(t, staticFeedSrc, Config{})
	res := analysis.Analyze(compileSrc(t, "lib.js", staticFeedSrc))

	var deadSite *analysis.SitePrediction
	for _, p := range res.Sites() {
		if p.Dead && p.Kind == ic.AccessLoad && p.Name == "q" {
			deadSite = p
			break
		}
	}
	if deadSite == nil {
		t.Fatal("analysis did not flag unusedHelper's o.q load as dead")
	}

	stale, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	planted := 0
	for id := range stale.Deps {
		if len(stale.Deps[id]) == 0 {
			continue
		}
		stale.Deps[id] = append(stale.Deps[id], DepEntry{
			Site: deadSite.Site,
			Kind: ic.AccessLoad,
			Name: "q",
			Desc: ic.CIDescriptor{Kind: ic.KindLoadField, Offset: 0},
		})
		planted++
	}
	if planted == 0 {
		t.Fatal("record has no dependent sites to plant next to")
	}

	_, reuser := reuseRunStatic(t, staticFeedSrc, stale, res)
	snap := reuser.prof.Snapshot()
	if snap.StaticFilteredPreloads == 0 {
		t.Fatal("planted dead-site dependencies were not filtered statically")
	}

	// Without the analysis the same record still behaves (handlerFits
	// refuses the planted handler at runtime) but nothing is counted as
	// statically filtered.
	plainVM, _ := reuseRun(t, staticFeedSrc, stale)
	if n := plainVM.Prof.Snapshot().StaticFilteredPreloads; n != 0 {
		t.Fatalf("run without a prefilter reported %d statically filtered preloads", n)
	}
}
