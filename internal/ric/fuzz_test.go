package ric

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// corpusSeeds loads the committed .ric seed corpus.
func corpusSeeds(f *testing.F) {
	f.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	seeded := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".ric" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		seeded++
	}
	if seeded == 0 {
		f.Fatal("no .ric seeds in testdata")
	}
}

// FuzzDecodeRecord asserts the decoder's contract on arbitrary input:
// never panic; either reject with an error or return a record that is
// shape-valid and round-trips through Encode/Decode.
func FuzzDecodeRecord(f *testing.F) {
	corpusSeeds(f)
	f.Add([]byte{})
	f.Add([]byte("RICREC\x02legacy"))
	f.Add([]byte("RICREC\x04")) // v4 header with truncated body
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		if err := rec.validateShape(); err != nil {
			t.Fatalf("Decode accepted a shape-invalid record: %v", err)
		}
		enc := rec.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if back.HCCount != rec.HCCount ||
			len(back.SiteTOAST) != len(rec.SiteTOAST) ||
			len(back.BuiltinTOAST) != len(rec.BuiltinTOAST) ||
			len(back.RejectedSites) != len(rec.RejectedSites) {
			t.Fatal("re-encode round trip changed the record")
		}
	})
}
