package ric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/ic"
	"ricjs/internal/vm"
	"ricjs/internal/workloads"
)

// pointFixtureSrc is the source behind the committed point*.ric fixtures
// (it must stay byte-identical to fuzzLib in the repo root and to
// testdata/point.js).
const pointFixtureSrc = `
	function Point(x, y) { this.x = x; this.y = y; }
	Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
	var pts = [];
	for (var i = 0; i < 8; i++) pts.push(new Point(i, i + 1));
	var total = 0;
	for (var j = 0; j < pts.length; j++) total += pts[j].norm2();
	var bag = {};
	bag['k' + 0] = total;
	print('total', bag.k0);
`

func analyzePointFixture(t *testing.T) (*analysis.Result, *bytecode.Program) {
	t.Helper()
	prog := compileSrc(t, "lib.js", pointFixtureSrc)
	return analysis.Analyze(prog), prog
}

func loadFixture(t *testing.T, name string) *Record {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %s: %v", name, err)
	}
	return rec
}

func TestVerifyStaticAcceptsFreshRecord(t *testing.T) {
	res, prog := analyzePointFixture(t)
	v := vm.New(vm.Options{})
	if _, err := v.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	rec := Extract(v, "lib.js", Config{})
	if err := rec.VerifyStatic(res); err != nil {
		t.Fatalf("fresh record rejected: %v", err)
	}
}

func TestVerifyStaticAcceptsCommittedFixture(t *testing.T) {
	res, _ := analyzePointFixture(t)
	rec := loadFixture(t, "point.ric")
	if err := rec.VerifyStatic(res); err != nil {
		t.Fatalf("committed point.ric rejected: %v", err)
	}
}

func TestVerifyStaticRejectsLyingFixtures(t *testing.T) {
	res, _ := analyzePointFixture(t)
	for _, name := range []string{"point-remap.ric", "point-offsets.ric"} {
		t.Run(name, func(t *testing.T) {
			rec := loadFixture(t, name)
			err := rec.VerifyStatic(res)
			if err == nil {
				t.Fatalf("%s accepted: the analysis cross-check must catch checksum-valid lies", name)
			}
			t.Logf("rejected: %v", err)
		})
	}
}

// TestVerifyStaticScriptless checks the uncovered-script policy: array.ric
// was recorded from a script the analysis never saw, so its site-level
// claims are skipped (matching Validate) and only builtin-anchored claims
// are checked — the record is accepted.
func TestVerifyStaticScriptless(t *testing.T) {
	res, _ := analyzePointFixture(t)
	rec := loadFixture(t, "array.ric")
	if err := rec.VerifyStatic(res); err != nil {
		t.Fatalf("array.ric rejected despite its script being uncovered: %v", err)
	}
}

// TestVerifyStaticWorkloads runs the full loop on every workload: record
// an initial run, then cross-check the record against the analysis of the
// same script. Every fresh record must be accepted.
func TestVerifyStaticWorkloads(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := compileSrc(t, p.Script, p.Source())
			res := analysis.Analyze(prog)
			v := vm.New(vm.Options{})
			if _, err := v.RunProgram(prog); err != nil {
				t.Fatal(err)
			}
			rec := Extract(v, p.Script, Config{})
			if err := rec.VerifyStatic(res); err != nil {
				t.Fatalf("fresh %s record rejected: %v", p.Name, err)
			}
		})
	}
}

// TestVerifyStaticCatchesInjectedLies applies the semantic fault modes to
// a fresh record and checks the analysis cross-check rejects the result
// (ids remapped between dep-carrying classes, offsets skewed) — without
// ever executing the record.
func TestVerifyStaticCatchesInjectedLies(t *testing.T) {
	res, prog := analyzePointFixture(t)
	v := vm.New(vm.Options{})
	if _, err := v.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	rec := Extract(v, "lib.js", Config{})

	t.Run("offset-skew", func(t *testing.T) {
		skewed, err := Decode(rec.Encode())
		if err != nil {
			t.Fatal(err)
		}
		changed := false
		for _, deps := range skewed.Deps {
			for k := range deps {
				if deps[k].Desc.Kind == ic.KindLoadField || deps[k].Desc.Kind == ic.KindStoreField {
					deps[k].Desc.Offset++
					changed = true
				}
			}
		}
		if !changed {
			t.Skip("no field handlers in record")
		}
		if err := skewed.VerifyStatic(res); err == nil {
			t.Fatal("offset-skewed record accepted")
		} else if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("unexpected rejection reason: %v", err)
		}
	})
}
