package ric

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ricjs/internal/symtab"
)

// TestEncodeEmitsV5 pins the current writer version: every record we
// persist from now on carries the symbol-table and typed-shape sections.
func TestEncodeEmitsV5(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	data := rec.Encode()
	if got := data[len(recordTag)]; got != 5 {
		t.Fatalf("Encode emitted version %d, want 5", got)
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("fresh v5 record does not decode: %v", err)
	}
}

// TestDecodeV3Compat decodes the committed v3 fixtures: persisted records
// from before the symbol-table format must keep working, with NameIDs
// resolved against the live symtab exactly as v4 decoding resolves them.
func TestDecodeV3Compat(t *testing.T) {
	for _, name := range []string{"point.ric", "array.ric"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if got := data[len(recordTag)]; got != 3 {
			t.Fatalf("%s: fixture is version %d, expected a v3 fixture", name, got)
		}
		rec, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: v3 record no longer decodes: %v", name, err)
		}
		for hcid, deps := range rec.Deps {
			for _, d := range deps {
				want := symtab.None
				if d.Name != "" {
					want = symtab.Intern(d.Name)
				}
				if d.NameID != want {
					t.Fatalf("%s: HCID %d dependent %s: NameID %d, want %d",
						name, hcid, d.Site, d.NameID, want)
				}
			}
		}
		// Upgrading on re-encode: the v3 record round-trips through the
		// current writer with identical content.
		up := rec.Encode()
		if got := up[len(recordTag)]; got != recordVersion {
			t.Fatalf("%s: re-encode emitted version %d, want %d", name, got, recordVersion)
		}
		back, err := Decode(up)
		if err != nil {
			t.Fatalf("%s: upgraded record does not decode: %v", name, err)
		}
		if !reflect.DeepEqual(back.Deps, rec.Deps) ||
			!reflect.DeepEqual(back.SiteTOAST, rec.SiteTOAST) ||
			!reflect.DeepEqual(back.BuiltinTOAST, rec.BuiltinTOAST) ||
			!reflect.DeepEqual(back.RejectedSites, rec.RejectedSites) ||
			back.HCCount != rec.HCCount || back.Script != rec.Script {
			t.Fatalf("%s: v3 upgrade changed the record", name)
		}
	}
}

// TestDecodeV4Compat decodes the committed v4 fixtures: records persisted
// before the typed-shape section must keep working, carrying no claims.
func TestDecodeV4Compat(t *testing.T) {
	for _, name := range []string{"point-v4.ric", "array-v4.ric"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if got := data[len(recordTag)]; got != 4 {
			t.Fatalf("%s: fixture is version %d, expected a v4 fixture", name, got)
		}
		rec, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: v4 record no longer decodes: %v", name, err)
		}
		if len(rec.TypedSlots) != 0 {
			t.Fatalf("%s: v4 record decoded with %d typed-shape rows", name, len(rec.TypedSlots))
		}
		up := rec.Encode()
		if got := up[len(recordTag)]; got != recordVersion {
			t.Fatalf("%s: re-encode emitted version %d, want %d", name, got, recordVersion)
		}
		back, err := Decode(up)
		if err != nil {
			t.Fatalf("%s: upgraded record does not decode: %v", name, err)
		}
		if !reflect.DeepEqual(back.Deps, rec.Deps) ||
			!reflect.DeepEqual(back.SiteTOAST, rec.SiteTOAST) ||
			!reflect.DeepEqual(back.BuiltinTOAST, rec.BuiltinTOAST) ||
			back.HCCount != rec.HCCount {
			t.Fatalf("%s: v4 upgrade changed the record", name)
		}
	}
}

// TestV4SymbolTableRoundTripByteIdentical pins the Initial→Reuse stability
// contract: encode → decode → encode reproduces the same bytes, so the
// record a Reuse session re-persists is bit-for-bit the record it loaded.
// The symbol table makes this non-trivial — table order must be derivable
// from the decoded record (first-use order of the deterministic walk).
func TestV4SymbolTableRoundTripByteIdentical(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	data := rec.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if again := back.Encode(); !bytes.Equal(again, data) {
		t.Fatal("decode → encode is not byte-identical")
	}
}

// TestSymbolTableDeduplicatesNames verifies the on-disk dedup: a property
// named at many dependent sites appears in the record exactly once (in the
// symbol table), not once per site as in v3.
func TestSymbolTableDeduplicatesNames(t *testing.T) {
	// The load site goes polymorphic over A and B, so it is recorded as a
	// dependent of both hidden classes — two DepEntries naming the property.
	src := `
		function A(v) { this.uniquePropertyName = v; }
		function B(v) { this.pad = 0; this.uniquePropertyName = v; }
		var objs = [new A(1), new B(2), new A(3), new B(4)];
		var total = 0;
		for (var j = 0; j < 4; j++) total += objs[j].uniquePropertyName;
		print(total);
	`
	_, rec := initialRun(t, src, Config{})
	uses := 0
	for _, deps := range rec.Deps {
		for _, d := range deps {
			if d.Name == "uniquePropertyName" {
				uses++
			}
		}
	}
	if uses < 2 {
		t.Fatalf("fixture too weak: property recorded at %d dependents, need ≥2", uses)
	}
	if n := bytes.Count(rec.Encode(), []byte("uniquePropertyName")); n != 1 {
		t.Fatalf("name appears %d times in encoded record, want exactly 1", n)
	}
}

// TestDecodeRejectsBadSymbolIndex hand-crafts a v4 record whose builtin
// section references a symbol index past the table: structural validation
// must reject it (the checksum is valid, so only index checking can).
func TestDecodeRejectsBadSymbolIndex(t *testing.T) {
	var b bytes.Buffer
	b.Write(recordTag)
	b.WriteByte(recordVersion)
	uv := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	uv(0) // label: empty string
	uv(0) // flags
	uv(0) // script table: empty
	uv(0) // symbol table: empty
	uv(1) // one hidden class
	uv(0) // ... with no dependents
	uv(0) // site TOAST: empty
	uv(1) // one builtin entry
	uv(5) // symbol index 5 — out of range
	uv(0) // builtin HCID
	uv(0) // rejected sites: empty
	var trailer [recordTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(trailer[:])
	if _, err := Decode(b.Bytes()); err == nil {
		t.Fatal("out-of-range symbol index was accepted")
	}
}

// TestDecodeStillRejectsUnknownVersions: adding v3/v4 compat must not
// widen the acceptance window to anything else.
func TestDecodeStillRejectsUnknownVersions(t *testing.T) {
	_, rec := initialRun(t, pointLib, Config{})
	data := rec.Encode()
	for _, v := range []byte{0, 1, 2, 6, 0x7c} {
		mut := append([]byte{}, data...)
		mut[len(recordTag)] = v
		// Fix the checksum so only the version gate can reject it.
		binary.LittleEndian.PutUint32(mut[len(mut)-recordTrailerLen:],
			crc32.ChecksumIEEE(mut[:len(mut)-recordTrailerLen]))
		if _, err := Decode(mut); err == nil {
			t.Fatalf("version byte %d was accepted", v)
		}
	}
}
