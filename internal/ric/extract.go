package ric

import (
	"ricjs/internal/ic"
	"ricjs/internal/objects"
	"ricjs/internal/source"
	"ricjs/internal/vm"
)

// Config controls extraction and reuse.
type Config struct {
	// IncludeGlobals extracts and reuses IC state for the global object.
	// Off by default: the global object's hidden-class history depends on
	// script load order (paper §6). The ablation benches turn it on.
	IncludeGlobals bool
}

// Extract runs the extraction phase (paper §5.2.1) over a completed VM:
// it enumerates the hidden-class graph, builds the HCVT dependent lists
// from the ICVectors, and builds the TOAST from each hidden class's
// recorded creator. The VM is read, not modified; extraction is the
// paper's off-line, off-critical-path step.
func Extract(v *vm.VM, label string, cfg Config) *Record {
	rec := &Record{
		Script:          label,
		SiteTOAST:       make(map[source.Site][]Pair),
		BuiltinTOAST:    make(map[string]int32),
		RejectedSites:   make(map[source.Site]bool),
		IncludesGlobals: cfg.IncludeGlobals,
	}

	// 1. Enumerate hidden classes deterministically: roots in creation
	// order, transition subtrees in sorted-property order.
	ids := make(map[*objects.HiddenClass]int32)
	var order []*objects.HiddenClass
	for _, root := range v.Roots() {
		root.WalkTransitions(func(hc *objects.HiddenClass) {
			if _, seen := ids[hc]; seen {
				return
			}
			ids[hc] = int32(len(order))
			order = append(order, hc)
		})
	}
	rec.HCCount = int32(len(order))
	rec.Deps = make([][]DepEntry, len(order))

	// Mark the global object's shape lineage; it is excluded from reuse
	// unless configured in.
	globalShapes := make(map[*objects.HiddenClass]bool)
	if !cfg.IncludeGlobals {
		for _, root := range v.Roots() {
			if root.Creator().Builtin == "(global)#root" {
				root.WalkTransitions(func(hc *objects.HiddenClass) { globalShapes[hc] = true })
			}
		}
	}

	// 2. TOAST: one entry per triggering creator. Builtin-created classes
	// get name-keyed entries; site-created classes get site-keyed pairs
	// with the transition parent as incoming class.
	for _, hc := range order {
		creator := hc.Creator()
		switch {
		case creator.IsZero():
			// Keyed stores have no context-independent identity.
		case !cfg.IncludeGlobals && (creator.Global || globalShapes[hc]):
			// Global-object shape history is load-order dependent.
		case creator.IsBuiltin():
			if _, exists := rec.BuiltinTOAST[creator.Builtin]; !exists {
				rec.BuiltinTOAST[creator.Builtin] = ids[hc]
			}
		default:
			in := int32(-1)
			if p := hc.Parent(); p != nil {
				if pid, ok := ids[p]; ok {
					in = pid
				}
			}
			rec.SiteTOAST[creator.Site] = append(rec.SiteTOAST[creator.Site], Pair{In: in, Out: ids[hc]})
		}
	}

	// The post-startup hidden classes of builtin objects anchor
	// validation: the Reuse run announces them at startup (paper §4:
	// builtins validate immediately because their creation is
	// deterministic).
	for _, b := range v.Builtins() {
		if id, ok := ids[b.HC]; ok {
			if !cfg.IncludeGlobals && globalShapes[b.HC] {
				continue
			}
			rec.BuiltinTOAST[b.Name] = id
		}
	}

	// 3. HCVT dependent lists: scan every ICVector slot entry. A
	// context-independent handler makes (site, hidden class) a dependent
	// pair; a context-dependent one marks the site rejected (§4: "If the
	// handler for a would-be Dependent site is not context-independent,
	// the site is not added to the Dependent list").
	for _, vec := range v.Vectors() {
		for i := range vec.Slots {
			slot := &vec.Slots[i]
			if slot.Kind.IsGlobal() && !cfg.IncludeGlobals {
				continue
			}
			for _, e := range slot.Entries {
				id, ok := ids[e.HC]
				if !ok {
					continue
				}
				if !cfg.IncludeGlobals && globalShapes[e.HC] {
					continue
				}
				desc, ci := ic.DescribeCI(e.H)
				if !ci {
					rec.RejectedSites[slot.Site] = true
					continue
				}
				rec.Deps[id] = append(rec.Deps[id], DepEntry{
					Site:   slot.Site,
					Kind:   slot.Kind,
					Name:   slot.Name,
					NameID: slot.NameID,
					Desc:   desc,
				})
			}
		}
	}

	rec.Stats = Stats{
		HiddenClasses:   int(rec.HCCount),
		TriggeringSites: len(rec.SiteTOAST),
		BuiltinEntries:  len(rec.BuiltinTOAST),
		RejectedSites:   len(rec.RejectedSites),
	}
	for _, deps := range rec.Deps {
		rec.Stats.DependentSlots += len(deps)
	}
	rec.Stats.ContextIndependentHandlers = rec.Stats.DependentSlots
	return rec
}
