package ric

import (
	"ricjs/internal/analysis"
	"ricjs/internal/ic"
	"ricjs/internal/objects"
	"ricjs/internal/profiler"
	"ricjs/internal/source"
	"ricjs/internal/symtab"
	"ricjs/internal/trace"
	"ricjs/internal/vm"
)

// Reuser is the Reuse-run half of RIC (paper §5.2.2). It implements
// vm.Hooks: on every hidden-class creation it consults the TOAST,
// incrementally validates the outgoing class when the incoming class is
// already validated (or when the creation is a rootless builtin/ctor
// event), and preloads the ICVector slots of the class's dependent sites.
//
// Validation never affects correctness: a failed validation simply means
// the affected dependent sites take ordinary IC misses, exactly as in a
// conventional run.
type Reuser struct {
	rec     *Record
	prof    *profiler.Counters
	tr      *trace.Buffer
	slotFor func(source.Site) *ic.Slot

	// Runtime HCVT columns: the Reuse-run address and Validated bit per
	// HCID (the record itself stays immutable and shareable), plus the
	// live hidden class each validated row corresponds to.
	addr  []uint64
	valid []bool
	hcs   []*objects.HiddenClass
	// done[id][j] marks dependent j of HCID id as applied (preloaded or
	// permanently rejected), so ReplayPreloads after later script loads
	// only retries dependents whose sites were not yet registered.
	done [][]bool

	// static, when set, pre-filters preloads against the analysis
	// predictions (see SetAnalysis).
	static *analysis.Result
}

var _ vm.Hooks = (*Reuser)(nil)

// NewReuser prepares the reuse state for one run. slotFor resolves site
// identities to live ICVector slots; wire it to the VM's SlotFor after
// constructing the VM (see ricjs.NewEngine).
func NewReuser(rec *Record, prof *profiler.Counters, slotFor func(source.Site) *ic.Slot) *Reuser {
	return &Reuser{
		rec:     rec,
		prof:    prof,
		slotFor: slotFor,
		addr:    make([]uint64, rec.HCCount),
		valid:   make([]bool, rec.HCCount),
		hcs:     make([]*objects.HiddenClass, rec.HCCount),
		done:    make([][]bool, rec.HCCount),
	}
}

// SetSlotResolver installs the site-to-slot resolver; needed because the
// VM and its hooks reference each other.
func (r *Reuser) SetSlotResolver(fn func(source.Site) *ic.Slot) { r.slotFor = fn }

// Attach completes the circular wiring between a VM and its Reuser: the
// Reuser is passed as the VM's hooks at construction, then attached to the
// VM's profiler and slot index once the VM exists.
func (r *Reuser) Attach(v *vm.VM) {
	r.prof = v.Prof
	r.tr = v.Trace()
	r.slotFor = v.SlotFor
}

// emit forwards a reuse-pipeline event to the attached trace buffer, if
// any. The nil check keeps the disabled cost to a single branch, exactly
// as in vm.VM.emit.
func (r *Reuser) emit(t trace.Type, site source.Site, name string, n int64) {
	if r.tr != nil {
		r.tr.Emit(t, site, name, n)
	}
}

// SetAnalysis feeds a static shape analysis into the reuse pipeline.
// Subsequent preloads are pre-filtered: a dependent whose site the
// analysis proved unreachable, no longer finds in the program, or whose
// predicted hidden-class set excludes the validated class is marked done
// without touching its ICVector slot — by the soundness invariant such a
// preload could never serve a hit. The analysis verdict (dead and
// megamorphic-risk site counts) is published through the profiler so it
// shows up in Stats(). Call after Attach (the profiler must be wired);
// calling again after a later script load replaces the previous result.
func (r *Reuser) SetAnalysis(res *analysis.Result) {
	r.static = res
	if res == nil || r.prof == nil {
		return
	}
	var dead, risk uint64
	for _, p := range res.Sites() {
		if p.Dead {
			dead++
		}
		if p.MegamorphicRisk {
			risk++
		}
	}
	r.prof.StaticSiteFlags(dead, risk)
}

// Validated reports whether an HCID has been validated in this run (for
// tests and diagnostics).
func (r *Reuser) Validated(id int32) bool {
	return id >= 0 && int(id) < len(r.valid) && r.valid[id]
}

// ValidatedCount returns the number of validated hidden classes.
func (r *Reuser) ValidatedCount() int {
	n := 0
	for _, v := range r.valid {
		if v {
			n++
		}
	}
	return n
}

// OnHCCreated implements vm.Hooks. creator identifies the triggering event;
// incoming is nil for rootless creations (builtins, constructor hidden
// classes, Object.create roots).
func (r *Reuser) OnHCCreated(creator objects.Creator, incoming, outgoing *objects.HiddenClass) {
	if creator.Global && !r.rec.IncludesGlobals {
		return
	}
	if creator.IsBuiltin() {
		if id, ok := r.rec.BuiltinTOAST[creator.Builtin]; ok {
			r.validate(creator, id, outgoing)
		}
		// Builtins absent from the record are not failures: the record may
		// simply predate them (e.g. a different script set).
		return
	}

	pairs, ok := r.rec.SiteTOAST[creator.Site]
	if !ok {
		// The Initial run never saw this site create a class: the Reuse
		// run diverged here (paper Figure 7(e)).
		if r.prof != nil {
			r.prof.ValidateFail()
		}
		r.emit(trace.EvValidateFail, creator.Site, creator.Builtin, 0)
		return
	}
	for _, p := range pairs {
		if p.In < 0 {
			if incoming == nil {
				r.validate(creator, p.Out, outgoing)
				return
			}
			continue
		}
		if incoming != nil && r.valid[p.In] && r.addr[p.In] == incoming.Addr() {
			r.validate(creator, p.Out, outgoing)
			return
		}
	}
	// No pair matched the incoming class: divergence; the outgoing class
	// cannot be certified and its dependents will miss normally.
	if r.prof != nil {
		r.prof.ValidateFail()
	}
	r.emit(trace.EvValidateFail, creator.Site, creator.Builtin, 0)
}

// validate certifies that a Reuse-run hidden class corresponds to an
// Initial-run HCID, then preloads every dependent site recorded for it.
// creator is the triggering event, carried only for trace identity.
func (r *Reuser) validate(creator objects.Creator, id int32, hc *objects.HiddenClass) {
	if id < 0 || int(id) >= len(r.valid) {
		return
	}
	r.addr[id] = hc.Addr()
	r.valid[id] = true
	r.hcs[id] = hc
	// Apply the row's typed-shape claims before preloading dependents, so
	// load-site entries installed from here on upgrade to the typed fast
	// path. Claims are advisory for correctness: the store path clears any
	// claim a concrete value ever violates (possible only with a lying
	// record), and the typed dispatch reads the live claim.
	for _, c := range r.rec.TypedSlots[id] {
		hc.SetSlotType(int(c.Offset), c.Type)
	}
	if r.prof != nil {
		r.prof.Validate()
	}
	r.emit(trace.EvValidatePass, creator.Site, creator.Builtin, int64(id))
	r.preloadDeps(id, hc)
}

// preloadDeps fills the ICVector slots of an HCID's dependent sites.
func (r *Reuser) preloadDeps(id int32, hc *objects.HiddenClass) {
	deps := r.rec.Deps[id]
	if len(deps) == 0 {
		return
	}
	if r.done[id] == nil {
		r.done[id] = make([]bool, len(deps))
	}
	preloaded := 0
	for j, dep := range deps {
		if r.done[id][j] {
			continue
		}
		if r.static != nil && !r.static.GlobalTop() && r.static.Covered(dep.Site.Script) {
			pred := r.static.At(dep.Site)
			if pred == nil || pred.Dead || !pred.Covers(hc) {
				// Statically useless: the site is gone, unreachable, or can
				// never observe this class. Filtering it here saves the slot
				// lookup and handler rebuild; correctness is unaffected
				// because such a preload could never match at runtime.
				r.done[id][j] = true
				if r.prof != nil {
					r.prof.StaticFiltered()
				}
				r.emit(trace.EvPreloadFiltered, dep.Site, dep.Name, int64(id))
				continue
			}
		}
		var slot *ic.Slot
		if r.slotFor != nil {
			slot = r.slotFor(dep.Site)
		}
		if slot == nil {
			// The site's script is not loaded (yet) in this run;
			// ReplayPreloads retries after later script loads.
			continue
		}
		if slot.Kind != dep.Kind || slot.NameID != dep.NameID {
			// The live site accesses a different property (or through a
			// different access kind) than the record saw: the record is
			// from a different program version. Never preload.
			r.done[id][j] = true
			r.emit(trace.EvPreloadRejected, dep.Site, dep.Name, int64(id))
			continue
		}
		h, err := dep.Desc.Rebuild()
		if err != nil || !handlerFits(h, slot, hc) {
			// Defensive: a corrupt or mismatched record must degrade to
			// conventional behaviour, never to a wrong preload.
			r.done[id][j] = true
			r.emit(trace.EvPreloadRejected, dep.Site, dep.Name, int64(id))
			continue
		}
		r.done[id][j] = true
		if slot.Preload(hc, h) {
			preloaded++
			r.emit(trace.EvPreloadApplied, dep.Site, dep.Name, int64(id))
		} else {
			r.emit(trace.EvPreloadRejected, dep.Site, dep.Name, int64(id))
		}
	}
	if preloaded > 0 && r.prof != nil {
		r.prof.Preload(preloaded)
	}
}

// ReplayPreloads retries dependent-site preloading for every validated
// hidden class. Call it after registering a new script's ICVectors:
// hidden classes validated earlier (builtins at startup, classes created
// by previously loaded scripts) may have dependents in the new script.
func (r *Reuser) ReplayPreloads() {
	for id, ok := range r.valid {
		if ok {
			r.preloadDeps(int32(id), r.hcs[id])
		}
	}
}

// handlerFits verifies a rebuilt handler semantically against the live
// slot and hidden class it is being preloaded for. A record passes the
// checksum and shape checks even when its *contents* lie — e.g. a
// hidden-class ID remapped by a fault so a LoadField offset of one class
// lands on another. Bounds checks alone would accept such a handler and
// silently read the wrong field, so instead every claim the handler makes
// is recomputed from the live hidden class: field handlers must name a
// property the class actually stores at exactly that offset, and
// element/length handlers must target a class descended from the Array
// root. A handler that passes is correct for this class no matter what
// the record said.
func handlerFits(h ic.Handler, slot *ic.Slot, hc *objects.HiddenClass) bool {
	switch t := h.(type) {
	case ic.LoadField:
		if slot.Kind.IsStore() || slot.Kind.IsKeyed() {
			return false
		}
		off, ok := hc.OffsetID(slot.NameID)
		return ok && off == t.Offset
	case ic.StoreField:
		if !slot.Kind.IsStore() || slot.Kind.IsKeyed() {
			return false
		}
		off, ok := hc.OffsetID(slot.NameID)
		return ok && off == t.Offset
	case ic.LoadArrayLength:
		return !slot.Kind.IsStore() && !slot.Kind.IsKeyed() &&
			slot.NameID == symtab.SymLength && isArrayClass(hc)
	case ic.LoadElement:
		return slot.Kind == ic.AccessKeyedLoad && isArrayClass(hc)
	case ic.StoreElement:
		return slot.Kind == ic.AccessKeyedStore && isArrayClass(hc)
	case ic.KeyedNamed:
		switch inner := t.Inner.(type) {
		case ic.LoadField:
			if slot.Kind != ic.AccessKeyedLoad {
				return false
			}
			off, ok := hc.OffsetID(t.NameID)
			return ok && off == inner.Offset
		case ic.StoreField:
			if slot.Kind != ic.AccessKeyedStore {
				return false
			}
			off, ok := hc.OffsetID(t.NameID)
			return ok && off == inner.Offset
		case ic.LoadArrayLength:
			return slot.Kind == ic.AccessKeyedLoad && t.NameID == symtab.SymLength && isArrayClass(hc)
		default:
			return false
		}
	default:
		return false
	}
}

// isArrayClass reports whether a hidden class descends from the builtin
// Array root — the only classes whose instances carry element storage.
func isArrayClass(hc *objects.HiddenClass) bool {
	root := hc
	for root.Parent() != nil {
		root = root.Parent()
	}
	return root.Creator().Builtin == "Array"
}

// ClassifyMiss implements vm.Hooks: the Table 4 miss breakdown. Misses at
// triggering sites are "Other" (RIC does not avert them by construction,
// §7.1: "Many of these misses occur in Triggering sites"); misses at sites
// rejected for context-dependent handlers are "Handler"; global-object
// misses are "Global" while RIC-for-globals is off.
func (r *Reuser) ClassifyMiss(site source.Site, receiverIsGlobal bool) profiler.MissKind {
	if receiverIsGlobal && !r.rec.IncludesGlobals {
		return profiler.MissGlobal
	}
	if _, triggering := r.rec.SiteTOAST[site]; triggering {
		return profiler.MissOther
	}
	if r.rec.RejectedSites[site] {
		return profiler.MissHandler
	}
	return profiler.MissOther
}
