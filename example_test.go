package ricjs_test

import (
	"fmt"
	"log"

	"ricjs"
)

// The canonical pipeline: Initial run, extraction, Reuse run.
func Example() {
	src := `
		function Point(x, y) { this.x = x; this.y = y; }
		var p = new Point(3, 4);
		var q = new Point(5, 12);
		print(p.x + p.y + q.x + q.y);
	`
	cache := ricjs.NewCodeCache()

	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := initial.Run("point.js", src); err != nil {
		log.Fatal(err)
	}
	record := initial.ExtractRecord("point.js")

	reuse := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: record})
	if err := reuse.Run("point.js", src); err != nil {
		log.Fatal(err)
	}
	fmt.Print(reuse.Output())
	fmt.Println("misses averted:", reuse.Stats().MissesSaved > 0)
	// Output:
	// 24
	// misses averted: true
}

// Records serialize for persistence and reload in later processes.
func ExampleDecodeRecord() {
	engine := ricjs.NewEngine(ricjs.Options{})
	if err := engine.Run("lib.js", "var cfg = {mode: 'fast'}; print(cfg.mode);"); err != nil {
		log.Fatal(err)
	}
	data := engine.ExtractRecord("lib.js").Encode()

	restored, err := ricjs.DecodeRecord(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(restored.Label())
	// Output: lib.js
}

// Per-library records merge into one covering an application that loads
// both libraries.
func ExampleMergeRecords() {
	extract := func(name, src string) *ricjs.Record {
		e := ricjs.NewEngine(ricjs.Options{})
		if err := e.Run(name, src); err != nil {
			log.Fatal(err)
		}
		return e.ExtractRecord(name)
	}
	a := extract("a.js", "function A() { this.x = 1; } var a = new A(); print(a.x);")
	b := extract("b.js", "function B() { this.y = 2; } var b = new B(); print(b.y);")

	merged, err := ricjs.MergeRecords(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(merged.Label())
	// Output: a.js+b.js
}

// MaxSteps turns runaway scripts into clean errors.
func ExampleOptions_maxSteps() {
	engine := ricjs.NewEngine(ricjs.Options{MaxSteps: 50_000})
	err := engine.Run("spin.js", "while (true) {}")
	fmt.Println(err != nil)
	// Output: true
}

// Engine statistics expose the paper's measurements programmatically.
func ExampleEngine_Stats() {
	engine := ricjs.NewEngine(ricjs.Options{})
	if err := engine.Run("s.js", "var o = {a: 1, b: 2}; print(o.a + o.b);"); err != nil {
		log.Fatal(err)
	}
	s := engine.Stats()
	fmt.Println("had misses:", s.ICMisses > 0)
	fmt.Println("created hidden classes:", s.HCCreated > 0)
	// Output:
	// had misses: true
	// created hidden classes: true
}
