package ricjs

import (
	"testing"

	"ricjs/internal/workloads"
)

// zeroQuickenGauges clears the accounting-neutral quickening gauges so two
// snapshots can be compared for the fields that must not move.
func zeroQuickenGauges(s *Stats) {
	s.Quickens, s.Dequickens = 0, 0
	s.QuickenedExecutions, s.FusedExecutions = 0, 0
}

// TestQuickeningNeutralOnAllWorkloads is the tentpole's semantic gate:
// with quickening and fusion enabled, every workload must produce
// byte-identical output and identical abstract instruction accounting —
// the overlay may only change wall-clock dispatch cost, never what the
// profiler or the script observes. Both conventional and record-reuse
// runs are checked; the reuse leg also covers preloaded entries (which
// quickened guards must skip until their first hit clears the flag).
func TestQuickeningNeutralOnAllWorkloads(t *testing.T) {
	var totalQuickened, totalFused uint64
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source()
			cache := NewCodeCache()

			runOne := func(quicken bool, rec *Record) *Engine {
				t.Helper()
				e := NewEngine(Options{
					Cache:       cache,
					Record:      rec,
					AddressSeed: 7,
					Quicken:     quicken,
					Fuse:        quicken,
				})
				if err := e.Run(p.Script, src); err != nil {
					t.Fatalf("quicken=%v: %v", quicken, err)
				}
				return e
			}

			initial := runOne(false, nil)
			rec := initial.ExtractRecord(p.Script)

			for _, leg := range []struct {
				name string
				rec  *Record
			}{
				{"conventional", nil},
				{"reuse", rec},
			} {
				off := runOne(false, leg.rec)
				on := runOne(true, leg.rec)
				if off.Output() != on.Output() {
					t.Errorf("%s: output diverged with quickening on", leg.name)
				}
				so, sq := off.Stats(), on.Stats()
				if so.Quickens != 0 || so.FusedExecutions != 0 {
					t.Errorf("%s: quickening-off run counted overlay activity: %+v", leg.name, so)
				}
				totalQuickened += sq.QuickenedExecutions
				totalFused += sq.FusedExecutions
				zeroQuickenGauges(&so)
				zeroQuickenGauges(&sq)
				if so != sq {
					t.Errorf("%s: accounting diverged\noff: %+v\non:  %+v", leg.name, so, sq)
				}
			}
		})
	}
	if totalQuickened == 0 {
		t.Error("no workload executed a quickened instruction; the gate is vacuous")
	}
	if totalFused == 0 {
		t.Error("no workload executed a fused instruction; the gate is vacuous")
	}
}
