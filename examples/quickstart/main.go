// Quickstart: the full RIC pipeline on a small library.
//
// An Initial run executes a script and builds IC state; the extraction
// phase distills the context-independent part into an ICRecord; a Reuse
// run consumes the record and averts IC misses. This example prints the
// IC statistics of each stage.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ricjs"
)

const library = `
	// A miniature widget library, initialization-heavy like the paper's
	// workloads: constructors, prototype methods, config literals.
	function Widget(id, kind) {
		this.id = id;
		this.kind = kind;
		this.visible = false;
	}
	Widget.prototype.show = function () { this.visible = true; return this; };
	Widget.prototype.describe = function () { return this.kind + '#' + this.id; };

	var registry = [];
	function make(id, kind) {
		var w = new Widget(id, kind);
		registry.push(w.show());
		return w;
	}

	make(1, 'button'); make(2, 'label'); make(3, 'input');
	make(4, 'button'); make(5, 'panel');

	var labels = '';
	for (var i = 0; i < registry.length; i++) {
		labels += registry[i].describe() + ' ';
	}
	print('initialized:', labels);
`

func main() {
	cache := ricjs.NewCodeCache()

	// 1. Initial run: ICs populate from scratch; every first access to a
	// new hidden class at a site is a miss handled by the runtime.
	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := initial.Run("widgets.js", library); err != nil {
		log.Fatal(err)
	}
	fmt.Print(initial.Output())
	report("initial run", initial.Stats())

	// 2. Extraction phase: build the ICRecord (HCVT + TOAST + saved
	// context-independent handlers).
	record := initial.ExtractRecord("widgets.js")
	rs := record.Stats()
	fmt.Printf("\nextracted record: %d hidden classes, %d triggering sites, "+
		"%d dependent slots, %d bytes encoded\n\n",
		rs.HiddenClasses, rs.TriggeringSites, rs.DependentSlots, len(record.Encode()))

	// 3. Conventional Reuse run: the code cache skips compilation, but the
	// ICVector starts empty, so the misses repeat.
	conventional := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := conventional.Run("widgets.js", library); err != nil {
		log.Fatal(err)
	}
	report("conventional reuse run", conventional.Stats())

	// 4. RIC Reuse run: hidden classes validate against the record and
	// dependent sites preload, averting their misses.
	reuse := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: record})
	if err := reuse.Run("widgets.js", library); err != nil {
		log.Fatal(err)
	}
	report("RIC reuse run", reuse.Stats())

	cs, rss := conventional.Stats(), reuse.Stats()
	fmt.Printf("\nRIC averted %d of %d misses (miss rate %.1f%% -> %.1f%%), "+
		"instructions %d -> %d (%.1f%% saved)\n",
		rss.MissesSaved, cs.ICMisses, cs.MissRate(), rss.MissRate(),
		cs.TotalInstr(), rss.TotalInstr(),
		100*(1-float64(rss.TotalInstr())/float64(cs.TotalInstr())))
}

func report(label string, s ricjs.Stats) {
	fmt.Printf("%-24s misses=%-4d hits=%-4d rate=%5.1f%%  instr=%d (ic-miss share %.0f%%)\n",
		label+":", s.ICMisses, s.ICHits, s.MissRate(), s.TotalInstr(), 100*s.ICMissShare())
}
