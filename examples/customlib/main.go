// Customlib: embedding the engine with your own library and persistent
// warm-up across simulated browser sessions.
//
// The example runs five "sessions" against a user-supplied library. The
// first session has no record (a cold start); it extracts and persists
// one. Every later session loads the record from disk, runs warm, and
// re-extracts — demonstrating that records are stable across sessions
// (the re-extracted record equals the previous one byte-for-byte, because
// the engine's behaviour is deterministic even though heap addresses
// differ every session).
//
// Run with: go run ./examples/customlib
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ricjs"
)

// customLibrary is an event-emitter + model library, the kind of code
// single-page applications initialize on every page load.
const customLibrary = `
	function Emitter() { this.listeners = {}; this.fired = 0; }
	Emitter.prototype.on = function (name, fn) {
		var list = this.listeners[name];
		if (!list) { list = []; this.listeners[name] = list; }
		list.push(fn);
		return this;
	};
	Emitter.prototype.emit = function (name, value) {
		var list = this.listeners[name];
		if (!list) return 0;
		for (var i = 0; i < list.length; i++) list[i](value);
		this.fired++;
		return list.length;
	};

	function Model(id) {
		this.id = id;
		this.attrs = {};
		this.events = new Emitter();
	}
	Model.prototype.set = function (key, value) {
		this.attrs[key] = value;
		this.events.emit('change', key);
		return this;
	};
	Model.prototype.get = function (key) { return this.attrs[key]; };

	var changes = 0;
	var models = [];
	for (var i = 0; i < 8; i++) {
		var m = new Model(i);
		m.events.on('change', function (key) { changes++; });
		m.set('name', 'model-' + i).set('rank', i * 10);
		models.push(m);
	}
	var ranks = 0;
	for (var j = 0; j < models.length; j++) ranks += models[j].get('rank');
	print('models', models.length, 'changes', changes, 'ranks', ranks);
`

func main() {
	cache := ricjs.NewCodeCache()
	recordPath := filepath.Join(os.TempDir(), "ricjs-customlib.ric")
	defer os.Remove(recordPath)

	var prevEncoded []byte
	for session := 1; session <= 5; session++ {
		opts := ricjs.Options{Cache: cache}
		cold := true
		if data, err := os.ReadFile(recordPath); err == nil {
			rec, err := ricjs.DecodeRecord(data)
			if err != nil {
				log.Fatalf("session %d: corrupt record: %v", session, err)
			}
			opts.Record = rec
			cold = false
		}

		engine := ricjs.NewEngine(opts)
		if err := engine.Run("customlib.js", customLibrary); err != nil {
			log.Fatal(err)
		}
		s := engine.Stats()
		mode := "warm (record loaded)"
		if cold {
			mode = "cold (no record)"
		}
		fmt.Printf("session %d %-22s misses=%-3d rate=%5.1f%%  averted=%-3d instr=%d\n",
			session, mode+":", s.ICMisses, s.MissRate(), s.MissesSaved, s.TotalInstr())

		// Re-extract and persist; deterministic execution means the record
		// converges immediately.
		record := engine.ExtractRecord("customlib.js")
		encoded := record.Encode()
		if prevEncoded != nil && !bytes.Equal(encoded, prevEncoded) {
			fmt.Println("  note: record changed since the previous session")
		}
		prevEncoded = encoded
		if err := os.WriteFile(recordPath, encoded, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nrecords from warm sessions are byte-identical across sessions,")
	fmt.Println("even though every session allocated at different heap addresses.")
}
