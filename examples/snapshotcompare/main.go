// Snapshotcompare: RIC versus heap snapshots, the paper's §9 discussion
// made runnable.
//
// Both techniques accelerate startup by reusing information from an
// earlier run. A heap snapshot restores the initialized state without
// executing anything — fastest, but rigid: it captures one exact
// application and freezes any nondeterminism. RIC re-executes the code
// with IC hints — slower than a snapshot, but correct under
// nondeterminism and shareable across applications.
//
// Run with: go run ./examples/snapshotcompare
package main

import (
	"fmt"
	"log"
	"time"

	"ricjs"
)

// The library stamps a session token from Math.random during
// initialization — the kind of nondeterminism §9 warns snapshots about.
const library = `
	function Service(name) { this.name = name; this.up = true; }
	var services = [];
	var names = ['auth', 'db', 'cache', 'queue'];
	for (var i = 0; i < names.length; i++) services.push(new Service(names[i]));
	var sessionToken = Math.floor(Math.random() * 1000000);
	var ready = services.length;
`

func main() {
	cache := ricjs.NewCodeCache()
	sources := map[string]string{"svc.js": library}

	// First session: initialize, then persist BOTH artifacts. Each
	// session gets its own Math.random seed, modelling real-world
	// nondeterminism across sessions.
	first := ricjs.NewEngine(ricjs.Options{Cache: cache, RandSeed: 1001})
	if err := first.Run("svc.js", library); err != nil {
		log.Fatal(err)
	}
	record := first.ExtractRecord("svc.js")
	snap, err := first.CaptureSnapshot("svc.js")
	if err != nil {
		log.Fatal(err)
	}
	firstToken := readNum(first, "sessionToken")
	snapBytes, _ := snap.Encode()
	fmt.Printf("first session: token=%v  (record %d B, snapshot %d B)\n\n",
		firstToken, len(record.Encode()), len(snapBytes))

	// Later session A: RIC reuse — re-executes, so the token is fresh.
	ricStart := time.Now()
	ricEngine := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: record, RandSeed: 2002})
	if err := ricEngine.Run("svc.js", library); err != nil {
		log.Fatal(err)
	}
	ricTime := time.Since(ricStart)
	fmt.Printf("RIC reuse:        %8v  token=%v  (fresh: %v)  misses averted=%d\n",
		ricTime.Round(time.Microsecond), readNum(ricEngine, "sessionToken"),
		readNum(ricEngine, "sessionToken") != firstToken, ricEngine.Stats().MissesSaved)

	// Later session B: snapshot restore — no execution, stale token.
	snapStart := time.Now()
	snapEngine := ricjs.NewEngine(ricjs.Options{Cache: cache, RandSeed: 3003})
	if err := snapEngine.RestoreSnapshot(snap, sources); err != nil {
		log.Fatal(err)
	}
	snapTime := time.Since(snapStart)
	fmt.Printf("snapshot restore: %8v  token=%v  (frozen from first session: %v)\n",
		snapTime.Round(time.Microsecond), readNum(snapEngine, "sessionToken"),
		readNum(snapEngine, "sessionToken") == firstToken)

	// The restored heap is nonetheless live: services work.
	if err := snapEngine.Run("probe.js", "print('services ready:', ready, services[0].name);"); err != nil {
		log.Fatal(err)
	}
	fmt.Print(snapEngine.Output())

	fmt.Println("\ntrade-off (paper §9): the snapshot is faster but froze the token and is")
	fmt.Println("tied to this exact application; the RIC record re-executes correctly and")
	fmt.Println("could be merged with other libraries' records (ricjs.MergeRecords).")
}

func readNum(e *ricjs.Engine, name string) float64 {
	v, _ := e.VM().Global().GetNamed(name)
	return v.ToNumber()
}
