// Website: cross-site IC reuse over the paper's seven libraries (§6).
//
// A first browsing session visits website 1, which loads all seven
// libraries of Table 3 in one order; the engine extracts an ICRecord and
// persists it to disk, as a browser would persist its code cache. A later
// session visits website 2, which loads the same libraries in a different
// order, and reuses the record. Because the record is keyed by
// context-independent site identities (script:line:col) and not by load
// order, most preloads still apply.
//
// Run with: go run ./examples/website
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ricjs"
	"ricjs/internal/workloads"
)

func main() {
	cache := ricjs.NewCodeCache()
	recordPath := filepath.Join(os.TempDir(), "ricjs-website.ric")

	// --- Session 1: visit website 1, record IC state. ---
	fmt.Println("session 1: visiting website 1 (Initial run)")
	session1 := ricjs.NewEngine(ricjs.Options{Cache: cache})
	start := time.Now()
	for _, script := range workloads.Website(1) {
		if err := session1.Run(script.Name, script.Source); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  loaded 7 libraries in %v, IC miss rate %.1f%%\n",
		time.Since(start).Round(time.Microsecond), session1.Stats().MissRate())

	record := session1.ExtractRecord("website1")
	if err := os.WriteFile(recordPath, record.Encode(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  persisted ICRecord to %s (%d bytes)\n\n", recordPath, len(record.Encode()))

	// --- Session 2: visit website 2 (different order), with and without
	// the record. ---
	data, err := os.ReadFile(recordPath)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := ricjs.DecodeRecord(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("session 2: visiting website 2 (libraries in a different order)")
	conv := ricjs.NewEngine(ricjs.Options{Cache: cache})
	convStart := time.Now()
	for _, script := range workloads.Website(2) {
		if err := conv.Run(script.Name, script.Source); err != nil {
			log.Fatal(err)
		}
	}
	convTime := time.Since(convStart)

	reuse := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: restored})
	reuseStart := time.Now()
	for _, script := range workloads.Website(2) {
		if err := reuse.Run(script.Name, script.Source); err != nil {
			log.Fatal(err)
		}
	}
	reuseTime := time.Since(reuseStart)

	if conv.Output() != reuse.Output() {
		log.Fatal("BUG: outputs diverge between conventional and RIC runs")
	}

	cs, rs := conv.Stats(), reuse.Stats()
	fmt.Printf("  conventional: %6d misses (rate %5.2f%%), %9d instr, %v\n",
		cs.ICMisses, cs.MissRate(), cs.TotalInstr(), convTime.Round(time.Microsecond))
	fmt.Printf("  with RIC:     %6d misses (rate %5.2f%%), %9d instr, %v\n",
		rs.ICMisses, rs.MissRate(), rs.TotalInstr(), reuseTime.Round(time.Microsecond))
	fmt.Printf("  averted %d misses via %d preloads (%d hidden classes validated, %d divergences)\n",
		rs.MissesSaved, rs.Preloads, rs.Validations, rs.ValFailures)
	fmt.Printf("  identical page output: %v\n", conv.Output() == reuse.Output())
}
