// Libprofile: Table-1-style IC characterization of one library.
//
// This example reproduces the paper's §3 analysis for a single workload:
// it runs the library's Initial run, prints the hidden-class and IC-miss
// statistics (the columns of Table 1), the instruction breakdown
// (Figure 5), and then dissects the extracted ICRecord.
//
// Run with: go run ./examples/libprofile [library]
// where library is one of: AngularJS CamanJS Handlebars jQuery JSFeat
// React Underscore (default React).
package main

import (
	"fmt"
	"log"
	"os"

	"ricjs"
	"ricjs/internal/workloads"
)

func main() {
	name := "React"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown library %q; choose one of %v", name, workloads.Names())
	}

	engine := ricjs.NewEngine(ricjs.Options{})
	if err := engine.Run(profile.Script, profile.Source()); err != nil {
		log.Fatal(err)
	}
	s := engine.Stats()

	fmt.Printf("IC characterization of %s (%s)\n\n", profile.Name, profile.Domain)

	fmt.Println("Table 1 columns (Initial run):")
	fmt.Printf("  distinct hidden classes:        %d\n", s.HCCreated)
	fmt.Printf("  IC misses:                      %d\n", s.ICMisses)
	fmt.Printf("  IC misses per hidden class:     %.1f\n", s.MissesPerHC())
	fmt.Printf("  context-independent handlers:   %.1f%%\n\n", s.ContextIndependentShare())

	fmt.Println("Figure 5 breakdown (Initial run):")
	fmt.Printf("  IC miss handling instructions:  %d (%.1f%%)\n", s.InstrICMiss, 100*s.ICMissShare())
	fmt.Printf("  rest of the work:               %d (%.1f%%)\n\n", s.InstrRest, 100*(1-s.ICMissShare()))

	fmt.Println("IC accesses:")
	fmt.Printf("  total %d: %d hits, %d misses (miss rate %.2f%%)\n\n",
		s.ICAccesses(), s.ICHits, s.ICMisses, s.MissRate())

	record := engine.ExtractRecord(profile.Name)
	rs := record.Stats()
	encoded := record.Encode()
	fmt.Println("extracted ICRecord:")
	fmt.Printf("  HCVT rows (hidden classes):     %d\n", rs.HiddenClasses)
	fmt.Printf("  TOAST site entries:             %d\n", rs.TriggeringSites)
	fmt.Printf("  TOAST builtin entries:          %d\n", rs.BuiltinEntries)
	fmt.Printf("  dependent (site, HC) slots:     %d\n", rs.DependentSlots)
	fmt.Printf("  sites rejected (CD handlers):   %d\n", rs.RejectedSites)
	fmt.Printf("  encoded size:                   %d bytes\n", len(encoded))
}
