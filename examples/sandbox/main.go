// Sandbox: embedding the engine to run untrusted or buggy scripts safely,
// with step budgets, catchable script errors, JavaScript stack traces, and
// deterministic behaviour — while still benefiting from RIC across runs.
//
// Run with: go run ./examples/sandbox
package main

import (
	"errors"
	"fmt"
	"strings"

	"ricjs"
	"ricjs/internal/vm"
)

type script struct {
	name string
	src  string
}

var scripts = []script{
	{"healthy.js", `
		function Job(id) { this.id = id; this.done = false; }
		Job.prototype.finish = function () { this.done = true; return this.id; };
		var total = 0;
		for (var i = 0; i < 5; i++) total += new Job(i).finish();
		print('healthy total', total);
	`},
	{"throws.js", `
		function parseConfig(cfg) {
			if (!cfg.version) throw 'config missing version';
			return cfg.version;
		}
		function boot() { return parseConfig({name: 'x'}); }
		boot();
	`},
	{"runaway.js", `
		print('starting infinite loop');
		while (true) { var spin = 0; spin++; }
	`},
	{"bad-syntax.js", `function ( { ]`},
}

func main() {
	cache := ricjs.NewCodeCache()

	// First pass builds records for the scripts that complete; a second
	// pass shows the sandbox staying safe while reusing IC state.
	records := map[string]*ricjs.Record{}
	for pass := 1; pass <= 2; pass++ {
		fmt.Printf("--- pass %d ---\n", pass)
		for _, s := range scripts {
			opts := ricjs.Options{
				Cache:    cache,
				MaxSteps: 200_000, // hard budget per engine
				Record:   records[s.name],
			}
			engine := ricjs.NewEngine(opts)
			err := engine.Run(s.name, s.src)
			switch {
			case err == nil:
				stats := engine.Stats()
				fmt.Printf("%-14s ok      %s", s.name,
					strings.TrimSuffix(engine.Output(), "\n"))
				if stats.MissesSaved > 0 {
					fmt.Printf("  [RIC averted %d misses]", stats.MissesSaved)
				}
				fmt.Println()
				records[s.name] = engine.ExtractRecord(s.name)
			case isLimit(err):
				fmt.Printf("%-14s KILLED  step budget exhausted (output so far: %s)\n",
					s.name, strings.TrimSpace(engine.Output()))
			case isThrown(err):
				// Script-level exception: report with its JS stack.
				firstLine := strings.SplitN(err.Error(), "\n", 2)
				fmt.Printf("%-14s THREW   %s\n", s.name, trimPrefixes(firstLine[0]))
				for _, frame := range jsStack(err) {
					fmt.Printf("%-14s         at %s\n", "", frame)
				}
			default:
				fmt.Printf("%-14s ERROR   %v\n", s.name, trimPrefixes(err.Error()))
			}
		}
	}
}

func isLimit(err error) bool {
	var le *vm.LimitError
	return errors.As(err, &le)
}

func isThrown(err error) bool {
	var th *vm.Thrown
	return errors.As(err, &th)
}

func jsStack(err error) []string {
	var th *vm.Thrown
	if errors.As(err, &th) {
		return th.Stack
	}
	return nil
}

func trimPrefixes(s string) string {
	for _, p := range []string{"ricjs: run ", "ricjs: load "} {
		if i := strings.Index(s, p); i >= 0 {
			s = s[i+len(p):]
		}
	}
	return s
}
