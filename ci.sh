#!/bin/sh
# ci.sh — the canonical check for this repository.
#
# Runs static analysis, a full build, the test suite under the race
# detector, and a short budget of both fuzz targets. Everything here must
# pass before a change lands.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== opcheck: opcode + value-type-table exhaustiveness =="
# Runs both analyzers: opcheck (disassembly entry, VM dispatch case,
# transfer case per opcode) and typecheck-transfer (opValueKind case per
# named opcode, so typed-shape inference never silently weakens).
go run ./cmd/opcheck ./internal/bytecode ./internal/vm ./internal/analysis

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== pool stress: concurrent record serving under -race =="
# The session-pool and code-cache stress tests are the concurrency
# gate: 48 sessions over 6 shared keys must produce exactly one
# extraction per key and byte-identical output, with zero races.
go test -race -count=1 -run 'TestSessionPool|TestSharedRecordImmutableUnderConcurrentReuse' .
go test -race -count=1 -run 'TestConcurrentLoad' ./internal/codecache

echo "== network chaos sweep: faulted remote record tier =="
# Every fault mode (dead, slow, torn, corrupting, flapping server) must
# complete all sessions with byte-identical output, materialize each key
# exactly once, and trip the breaker exactly where expected. ricbench
# exits nonzero if any mode breaks its degradation contract.
go run ./cmd/ricbench -netfaults >/dev/null

echo "== ricserved smoke: one extraction fleet-wide =="
# Builds and runs the real server binary, serves the same key from two
# pooled clients, and asserts exactly one extraction across the fleet
# plus a clean SIGTERM drain. The partition and store-fault tests ride
# along under -race.
go test -race -count=1 -run 'TestRicservedFleetSmoke|TestRemote|TestSessionPoolStoreFaultsUnderRace' .

echo "== progen differential sweep: fixed seed range =="
# Seeds 200-260 are dense in keyed-element, delete-to-dictionary, and
# prototype-call statement kinds: plain, Conventional, RIC Reuse, and
# snapshot-restore must agree on every one of them.
go test -count=1 -run 'TestProgenDifferential' ./internal/progen

echo "== golden traces: drift check =="
# The committed per-workload event summaries under testdata/traces/ must
# match what the engine emits today. Regenerate deliberately with
#   go test -run TestGoldenTraces -update .
# Every workload must carry BOTH phases: a missing initial or reuse
# golden is a gap the drift test alone cannot see (it only diffs files
# the current test list produces).
for g in testdata/traces/*.initial.golden; do
  base="${g%.initial.golden}"
  if [ ! -f "$base.reuse.golden" ]; then
    echo "ci.sh: $base has an initial golden but no reuse golden" >&2
    exit 1
  fi
done
for g in testdata/traces/*.reuse.golden; do
  base="${g%.reuse.golden}"
  if [ ! -f "$base.initial.golden" ]; then
    echo "ci.sh: $base has a reuse golden but no initial golden" >&2
    exit 1
  fi
done
go test -count=1 -run 'TestGoldenTraces|TestTraceDeterminism' .

echo "== coverage floors =="
# Statement-coverage floors for the observability-critical packages, set
# just below the levels measured when the trace layer landed. Raising
# coverage moves the floor; silently shedding tests fails the build.
check_cover() {
  pkg="$1"; floor="$2"
  pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
  if [ -z "$pct" ]; then
    echo "ci.sh: no coverage figure for $pkg" >&2
    exit 1
  fi
  if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p < f) }')" = 1 ]; then
    echo "ci.sh: coverage of $pkg fell to $pct% (floor $floor%)" >&2
    exit 1
  fi
  echo "$pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/ic 98.0
check_cover ./internal/vm 85.0
check_cover ./internal/ric 86.0
check_cover ./internal/trace 93.0

echo "== riclint: offline record verification =="
# Truthful fixtures must pass all four layers (integrity, site existence,
# static cross-check, typed-shape soundness)...
go run ./cmd/riclint -js lib.js=testdata/point.js testdata/point.ric testdata/array.ric testdata/point-typed.ric
# The workload-zoo regime fixtures ride the same sweep: a keyed-IC record
# (element + array-length + keyed-named handlers) and a dictionary-mode
# record (fast shapes recorded before delete-demotion). Regenerate with
#   RIC_REGEN_FIXTURES=1 go test ./internal/ric/ -run TestRegenerateZooFixtures
go run ./cmd/riclint -js keyed.js=testdata/keyed.js testdata/keyed.ric
go run ./cmd/riclint -js dict.js=testdata/dict.js testdata/dict.ric
# ...and every fault-injected fixture must be rejected without executing:
# remapped ids and skewed offsets by the analysis cross-check, forged
# slot-type claims by the typed recomputation, corrupt bytes at decode.
for bad in point-remap point-offsets point-badversion point-bitflip point-truncated point-forgedclaim point-badtype; do
  if go run ./cmd/riclint -js lib.js=testdata/point.js "testdata/$bad.ric" >/dev/null 2>&1; then
    echo "ci.sh: riclint accepted lying fixture $bad.ric" >&2
    exit 1
  fi
done
# The forged keyed record moves an element handler onto a non-array
# shape; only the static cross-check can catch it, so the source map is
# required for the rejection to be meaningful.
if go run ./cmd/riclint -js keyed.js=testdata/keyed.js testdata/keyed-forged.ric >/dev/null 2>&1; then
  echo "ci.sh: riclint accepted lying fixture keyed-forged.ric" >&2
  exit 1
fi

echo "== perf gate: deterministic counters + load floor vs BENCH_baseline.json =="
# Instruction counts and record sizes are bit-for-bit reproducible, so
# they are gated exactly (tolerance 2%), with zero flake; wall-clock
# timings are deliberately not gated — except the open-loop load smoke,
# which is gated only as a very conservative throughput floor (a quarter
# of healthy) so it catches the read path growing a lock or sessions
# serializing, never scheduler noise. The same run must also serve every
# session with zero failures and zero output mismatches. After a
# legitimate improvement, refresh and commit the baseline:
#   go run ./cmd/ricbench -format json | go run ./cmd/perfgate -write
go run ./cmd/ricbench -format json -load -load-sessions 80 -load-rate 400 -load-cold 4 | go run ./cmd/perfgate

echo "== fuzz: FuzzDecodeRecord (10s) =="
go test -run '^$' -fuzz '^FuzzDecodeRecord$' -fuzztime 10s ./internal/ric/

echo "== fuzz: FuzzReuseRun (10s) =="
go test -run '^$' -fuzz '^FuzzReuseRun$' -fuzztime 10s .

echo "ci.sh: all checks passed"
