#!/bin/sh
# ci.sh — the canonical check for this repository.
#
# Runs static analysis, a full build, the test suite under the race
# detector, and a short budget of both fuzz targets. Everything here must
# pass before a change lands.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz: FuzzDecodeRecord (10s) =="
go test -run '^$' -fuzz '^FuzzDecodeRecord$' -fuzztime 10s ./internal/ric/

echo "== fuzz: FuzzReuseRun (10s) =="
go test -run '^$' -fuzz '^FuzzReuseRun$' -fuzztime 10s .

echo "ci.sh: all checks passed"
