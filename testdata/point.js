
	function Point(x, y) { this.x = x; this.y = y; }
	Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
	var pts = [];
	for (var i = 0; i < 8; i++) pts.push(new Point(i, i + 1));
	var total = 0;
	for (var j = 0; j < pts.length; j++) total += pts[j].norm2();
	var bag = {};
	bag['k' + 0] = total;
	print('total', bag.k0);
