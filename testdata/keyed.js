
	var ks = [];
	for (var i = 0; i < 16; i++) ks.push(i % 7);
	function ksum(a) { var s = 0; for (var si = 0; si < a.length; si++) s += a[si]; return s; }
	function kscale(a) { for (var ci = 0; ci < a.length; ci++) a[ci] = a[ci] * 2 - ci; return a.length; }
	var krec = { alpha: 1, beta: 2, gamma: 3 };
	function kget(r, k) { return r[k]; }
	function kbump(r, k) { r[k] = r[k] + 1; return r[k]; }
	var acc = 0;
	for (var t = 0; t < 6; t++) {
		acc += ksum(ks) + kscale(ks);
		acc += kget(krec, 'alpha') + kbump(krec, 'beta');
	}
	print('keyed', acc);
