
	function Entry(n) { this.k0 = n; this.k1 = n + 1; this.k2 = n + 2; this.k3 = n * 2; }
	function dread(e) { return e.k0 + e.k3; }
	function dupd(e, n) { e.k3 = e.k3 + n; return e.k3; }
	var pool = [];
	for (var i = 0; i < 6; i++) pool.push(new Entry(i));
	var acc = 0;
	for (var w = 0; w < 4; w++) {
		for (var j = 0; j < pool.length; j++) acc += dread(pool[j]) + dupd(pool[j], 1);
	}
	for (var d = 0; d < 3; d++) {
		delete pool[d].k1;
		delete pool[d].k2;
		pool[d].extra = d * 2;
	}
	var post = 0;
	for (var r = 0; r < pool.length; r++) post += dread(pool[r]);
	var fast = new Entry(40);
	post += dread(fast);
	print('dict', acc, post);
