package ricjs_test

// One benchmark per table and figure of the paper's evaluation. The
// custom metrics attached via b.ReportMetric carry the quantity each
// table/figure reports; `go test -bench . -benchmem` regenerates the full
// set. cmd/ricbench prints the same data as formatted tables.

import (
	"testing"

	"ricjs"
	"ricjs/internal/bench"
	"ricjs/internal/workloads"
)

type (
	// Local aliases keep the benchmark bodies readable.
	CodeCache = ricjs.CodeCache
	Record    = ricjs.Record
	Options   = ricjs.Options
	Stats     = ricjs.Stats
)

var (
	NewEngine    = ricjs.NewEngine
	NewCodeCache = ricjs.NewCodeCache
)

// prime compiles a library into a cache and returns (cache, src) so that
// benchmark iterations measure execution, not compilation.
func prime(b *testing.B, p workloads.Profile) (*CodeCache, string) {
	b.Helper()
	cache := NewCodeCache()
	src := p.Source()
	e := NewEngine(Options{Cache: cache})
	if err := e.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	return cache, src
}

// recordFor runs the Initial run and extracts the record.
func recordFor(b *testing.B, cache *CodeCache, p workloads.Profile, src string) *Record {
	b.Helper()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	return initial.ExtractRecord(p.Name)
}

// BenchmarkFigure1Data walks the Figure 1 motivation series (static data;
// present so every figure has a bench target).
func BenchmarkFigure1Data(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var loads, reqs float64
		for _, p := range bench.Figure1Paper {
			loads += p.ExpectedLoadSecs
			reqs += p.JSRequests
		}
		if loads == 0 || reqs == 0 {
			b.Fatal("empty figure 1 data")
		}
	}
	b.ReportMetric(float64(len(bench.Figure1Paper)), "years")
}

// BenchmarkFigure5InstructionBreakdown measures each library's Initial
// run and reports the IC-miss share of its instructions (Figure 5).
func BenchmarkFigure5InstructionBreakdown(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			var share float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				share = e.Stats().ICMissShare()
			}
			b.ReportMetric(100*share, "%ic-miss-instr")
		})
	}
}

// BenchmarkTable1Characterization measures the Table 1 columns in the
// Initial run of each library.
func BenchmarkTable1Characterization(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			var s Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				s = e.Stats()
			}
			b.ReportMetric(float64(s.HCCreated), "hidden-classes")
			b.ReportMetric(float64(s.ICMisses), "ic-misses")
			b.ReportMetric(s.MissesPerHC(), "misses/hc")
			b.ReportMetric(s.ContextIndependentShare(), "%ci-handlers")
		})
	}
}

// BenchmarkTable4MissRates measures IC miss rates of the Initial and RIC
// Reuse runs (Table 4).
func BenchmarkTable4MissRates(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var initRate, reuseRate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				initial := NewEngine(Options{Cache: cache})
				if err := initial.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				initRate = initial.Stats().MissRate()

				reuse := NewEngine(Options{Cache: cache, Record: record})
				if err := reuse.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				reuseRate = reuse.Stats().MissRate()
			}
			b.ReportMetric(initRate, "%initial-miss-rate")
			b.ReportMetric(reuseRate, "%reuse-miss-rate")
		})
	}
}

// BenchmarkFigure8Instructions measures the normalized dynamic
// instruction count of the RIC Reuse run against the Conventional one.
func BenchmarkFigure8Instructions(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var conv, ric uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := NewEngine(Options{Cache: cache})
				if err := c.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				conv = c.Stats().TotalInstr()

				r := NewEngine(Options{Cache: cache, Record: record})
				if err := r.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				ric = r.Stats().TotalInstr()
			}
			b.ReportMetric(100*float64(ric)/float64(conv), "%instr-vs-conventional")
		})
	}
}

// BenchmarkFigure9ExecutionTime times the two Reuse-run variants; the
// Conventional/RIC pair of sub-benchmarks per library gives the
// normalized execution time of Figure 9 (ns/op ratios).
func BenchmarkFigure9ExecutionTime(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		cachedRecord := func(b *testing.B) (*CodeCache, string, *Record) {
			cache, src := prime(b, p)
			return cache, src, recordFor(b, cache, p, src)
		}
		b.Run(p.Name+"/Conventional", func(b *testing.B) {
			cache, src, _ := cachedRecord(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.Name+"/RIC", func(b *testing.B) {
			cache, src, record := cachedRecord(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache, Record: record})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtractionPhase times the extraction phase alone (§7.3).
func BenchmarkExtractionPhase(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			initial := NewEngine(Options{Cache: cache})
			if err := initial.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if initial.ExtractRecord(p.Name) == nil {
					b.Fatal("nil record")
				}
			}
		})
	}
}

// BenchmarkICRecordSize measures encoding throughput and reports the
// record's size (§7.3's memory overhead).
func BenchmarkICRecordSize(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var size int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				size = len(record.Encode())
			}
			b.ReportMetric(float64(size)/1024, "record-KB")
		})
	}
}

// BenchmarkWebsiteCrossReuse measures the §6 robustness setup: record
// from website 1 consumed by website 2's different load order.
func BenchmarkWebsiteCrossReuse(b *testing.B) {
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	for _, s := range workloads.Website(1) {
		if err := initial.Run(s.Name, s.Source); err != nil {
			b.Fatal(err)
		}
	}
	record := initial.ExtractRecord("website1")
	var saved uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reuse := NewEngine(Options{Cache: cache, Record: record})
		for _, s := range workloads.Website(2) {
			if err := reuse.Run(s.Name, s.Source); err != nil {
				b.Fatal(err)
			}
		}
		saved = reuse.Stats().MissesSaved
	}
	b.ReportMetric(float64(saved), "misses-averted")
}

// BenchmarkAblationGlobals compares reuse effectiveness with RIC's
// global-object support on and off (§6's design choice).
func BenchmarkAblationGlobals(b *testing.B) {
	for _, includeGlobals := range []bool{false, true} {
		name := "GlobalsOff"
		if includeGlobals {
			name = "GlobalsOn"
		}
		b.Run(name, func(b *testing.B) {
			p, _ := workloads.ByName("jQuery")
			cache := NewCodeCache()
			src := p.Source()
			initial := NewEngine(Options{Cache: cache, IncludeGlobals: includeGlobals})
			if err := initial.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			record := initial.ExtractRecord(p.Name)
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reuse := NewEngine(Options{Cache: cache, Record: record})
				if err := reuse.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				rate = reuse.Stats().MissRate()
			}
			b.ReportMetric(rate, "%reuse-miss-rate")
		})
	}
}

// BenchmarkAblationEmptyRecord isolates RIC's Reuse-run bookkeeping
// overhead by running with a record that matches nothing (§7.3 reports
// this overhead as negligible).
func BenchmarkAblationEmptyRecord(b *testing.B) {
	cache := NewCodeCache()
	emptyEngine := NewEngine(Options{Cache: cache})
	if err := emptyEngine.Run("empty.js", ";"); err != nil {
		b.Fatal(err)
	}
	record := emptyEngine.ExtractRecord("empty")
	p, _ := workloads.ByName("AngularJS")
	src := p.Source()
	warm := NewEngine(Options{Cache: cache})
	if err := warm.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	for _, withRecord := range []bool{false, true} {
		name := "Conventional"
		if withRecord {
			name = "WithEmptyRecord"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{Cache: cache}
				if withRecord {
					opts.Record = record
				}
				e := NewEngine(opts)
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRestore times heap-snapshot restoration against the
// Reuse runs (the §9 comparison): restore skips execution entirely.
func BenchmarkSnapshotRestore(b *testing.B) {
	p, _ := workloads.ByName("jQuery")
	src := p.Source()
	sources := map[string]string{p.Script: src}
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	snap, err := initial.CaptureSnapshot(p.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := NewEngine(Options{Cache: cache})
		if err := target.RestoreSnapshot(snap, sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead compares a Reuse run with tracing disabled (nil
// sink — the default) and enabled. The Disabled variant is the number the
// ≤2% overhead contract is stated against: a nil trace buffer must cost no
// more than the one predictable branch per event site.
func BenchmarkTraceOverhead(b *testing.B) {
	p, _ := workloads.ByName("jQuery")
	cache := NewCodeCache()
	src := p.Source()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	record := initial.ExtractRecord(p.Name)
	b.Run("Disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(Options{Cache: cache, Record: record})
			if err := e.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(Options{Cache: cache, Record: record, Trace: ricjs.NewTrace(0)})
			if err := e.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			if e.Trace().Len() == 0 {
				b.Fatal("enabled trace collected no events")
			}
		}
	})
}

// BenchmarkEngineStartup measures bare engine construction (builtin
// environment setup), context for all per-run numbers above.
func BenchmarkEngineStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(Options{})
		if e == nil {
			b.Fatal("nil engine")
		}
	}
}
