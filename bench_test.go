package ricjs_test

// One benchmark per table and figure of the paper's evaluation. The
// custom metrics attached via b.ReportMetric carry the quantity each
// table/figure reports; `go test -bench . -benchmem` regenerates the full
// set. cmd/ricbench prints the same data as formatted tables.

import (
	"testing"

	"ricjs"
	"ricjs/internal/bench"
	"ricjs/internal/objects"
	"ricjs/internal/vm"
	"ricjs/internal/workloads"
)

type (
	// Local aliases keep the benchmark bodies readable.
	CodeCache = ricjs.CodeCache
	Record    = ricjs.Record
	Options   = ricjs.Options
	Stats     = ricjs.Stats
)

var (
	NewEngine    = ricjs.NewEngine
	NewCodeCache = ricjs.NewCodeCache
)

// prime compiles a library into a cache and returns (cache, src) so that
// benchmark iterations measure execution, not compilation.
func prime(b *testing.B, p workloads.Profile) (*CodeCache, string) {
	b.Helper()
	cache := NewCodeCache()
	src := p.Source()
	e := NewEngine(Options{Cache: cache})
	if err := e.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	return cache, src
}

// recordFor runs the Initial run and extracts the record.
func recordFor(b *testing.B, cache *CodeCache, p workloads.Profile, src string) *Record {
	b.Helper()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	return initial.ExtractRecord(p.Name)
}

// BenchmarkFigure1Data walks the Figure 1 motivation series (static data;
// present so every figure has a bench target).
func BenchmarkFigure1Data(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var loads, reqs float64
		for _, p := range bench.Figure1Paper {
			loads += p.ExpectedLoadSecs
			reqs += p.JSRequests
		}
		if loads == 0 || reqs == 0 {
			b.Fatal("empty figure 1 data")
		}
	}
	b.ReportMetric(float64(len(bench.Figure1Paper)), "years")
}

// BenchmarkFigure5InstructionBreakdown measures each library's Initial
// run and reports the IC-miss share of its instructions (Figure 5).
func BenchmarkFigure5InstructionBreakdown(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			var share float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				share = e.Stats().ICMissShare()
			}
			b.ReportMetric(100*share, "%ic-miss-instr")
		})
	}
}

// BenchmarkTable1Characterization measures the Table 1 columns in the
// Initial run of each library.
func BenchmarkTable1Characterization(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			var s Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				s = e.Stats()
			}
			b.ReportMetric(float64(s.HCCreated), "hidden-classes")
			b.ReportMetric(float64(s.ICMisses), "ic-misses")
			b.ReportMetric(s.MissesPerHC(), "misses/hc")
			b.ReportMetric(s.ContextIndependentShare(), "%ci-handlers")
		})
	}
}

// BenchmarkTable4MissRates measures IC miss rates of the Initial and RIC
// Reuse runs (Table 4).
func BenchmarkTable4MissRates(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var initRate, reuseRate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				initial := NewEngine(Options{Cache: cache})
				if err := initial.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				initRate = initial.Stats().MissRate()

				reuse := NewEngine(Options{Cache: cache, Record: record})
				if err := reuse.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				reuseRate = reuse.Stats().MissRate()
			}
			b.ReportMetric(initRate, "%initial-miss-rate")
			b.ReportMetric(reuseRate, "%reuse-miss-rate")
		})
	}
}

// BenchmarkFigure8Instructions measures the normalized dynamic
// instruction count of the RIC Reuse run against the Conventional one.
func BenchmarkFigure8Instructions(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var conv, ric uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := NewEngine(Options{Cache: cache})
				if err := c.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				conv = c.Stats().TotalInstr()

				r := NewEngine(Options{Cache: cache, Record: record})
				if err := r.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				ric = r.Stats().TotalInstr()
			}
			b.ReportMetric(100*float64(ric)/float64(conv), "%instr-vs-conventional")
		})
	}
}

// BenchmarkFigure9ExecutionTime times the two Reuse-run variants; the
// Conventional/RIC pair of sub-benchmarks per library gives the
// normalized execution time of Figure 9 (ns/op ratios).
func BenchmarkFigure9ExecutionTime(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		cachedRecord := func(b *testing.B) (*CodeCache, string, *Record) {
			cache, src := prime(b, p)
			return cache, src, recordFor(b, cache, p, src)
		}
		b.Run(p.Name+"/Conventional", func(b *testing.B) {
			cache, src, _ := cachedRecord(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(p.Name+"/RIC", func(b *testing.B) {
			cache, src, record := cachedRecord(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(Options{Cache: cache, Record: record})
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtractionPhase times the extraction phase alone (§7.3).
func BenchmarkExtractionPhase(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			initial := NewEngine(Options{Cache: cache})
			if err := initial.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if initial.ExtractRecord(p.Name) == nil {
					b.Fatal("nil record")
				}
			}
		})
	}
}

// BenchmarkICRecordSize measures encoding throughput and reports the
// record's size (§7.3's memory overhead).
func BenchmarkICRecordSize(b *testing.B) {
	for _, p := range workloads.Profiles {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			cache, src := prime(b, p)
			record := recordFor(b, cache, p, src)
			var size int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				size = len(record.Encode())
			}
			b.ReportMetric(float64(size)/1024, "record-KB")
		})
	}
}

// BenchmarkWebsiteCrossReuse measures the §6 robustness setup: record
// from website 1 consumed by website 2's different load order.
func BenchmarkWebsiteCrossReuse(b *testing.B) {
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	for _, s := range workloads.Website(1) {
		if err := initial.Run(s.Name, s.Source); err != nil {
			b.Fatal(err)
		}
	}
	record := initial.ExtractRecord("website1")
	var saved uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reuse := NewEngine(Options{Cache: cache, Record: record})
		for _, s := range workloads.Website(2) {
			if err := reuse.Run(s.Name, s.Source); err != nil {
				b.Fatal(err)
			}
		}
		saved = reuse.Stats().MissesSaved
	}
	b.ReportMetric(float64(saved), "misses-averted")
}

// BenchmarkAblationGlobals compares reuse effectiveness with RIC's
// global-object support on and off (§6's design choice).
func BenchmarkAblationGlobals(b *testing.B) {
	for _, includeGlobals := range []bool{false, true} {
		name := "GlobalsOff"
		if includeGlobals {
			name = "GlobalsOn"
		}
		b.Run(name, func(b *testing.B) {
			p, _ := workloads.ByName("jQuery")
			cache := NewCodeCache()
			src := p.Source()
			initial := NewEngine(Options{Cache: cache, IncludeGlobals: includeGlobals})
			if err := initial.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			record := initial.ExtractRecord(p.Name)
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reuse := NewEngine(Options{Cache: cache, Record: record})
				if err := reuse.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
				rate = reuse.Stats().MissRate()
			}
			b.ReportMetric(rate, "%reuse-miss-rate")
		})
	}
}

// BenchmarkAblationEmptyRecord isolates RIC's Reuse-run bookkeeping
// overhead by running with a record that matches nothing (§7.3 reports
// this overhead as negligible).
func BenchmarkAblationEmptyRecord(b *testing.B) {
	cache := NewCodeCache()
	emptyEngine := NewEngine(Options{Cache: cache})
	if err := emptyEngine.Run("empty.js", ";"); err != nil {
		b.Fatal(err)
	}
	record := emptyEngine.ExtractRecord("empty")
	p, _ := workloads.ByName("AngularJS")
	src := p.Source()
	warm := NewEngine(Options{Cache: cache})
	if err := warm.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	for _, withRecord := range []bool{false, true} {
		name := "Conventional"
		if withRecord {
			name = "WithEmptyRecord"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{Cache: cache}
				if withRecord {
					opts.Record = record
				}
				e := NewEngine(opts)
				if err := e.Run(p.Script, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotRestore times heap-snapshot restoration against the
// Reuse runs (the §9 comparison): restore skips execution entirely.
func BenchmarkSnapshotRestore(b *testing.B) {
	p, _ := workloads.ByName("jQuery")
	src := p.Source()
	sources := map[string]string{p.Script: src}
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	snap, err := initial.CaptureSnapshot(p.Name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := NewEngine(Options{Cache: cache})
		if err := target.RestoreSnapshot(snap, sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead compares a Reuse run with tracing disabled (nil
// sink — the default) and enabled. The Disabled variant is the number the
// ≤2% overhead contract is stated against: a nil trace buffer must cost no
// more than the one predictable branch per event site.
func BenchmarkTraceOverhead(b *testing.B) {
	p, _ := workloads.ByName("jQuery")
	cache := NewCodeCache()
	src := p.Source()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	record := initial.ExtractRecord(p.Name)
	b.Run("Disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(Options{Cache: cache, Record: record})
			if err := e.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := NewEngine(Options{Cache: cache, Record: record, Trace: ricjs.NewTrace(0)})
			if err := e.Run(p.Script, src); err != nil {
				b.Fatal(err)
			}
			if e.Trace().Len() == 0 {
				b.Fatal("enabled trace collected no events")
			}
		}
	})
}

// BenchmarkEngineStartup measures bare engine construction (builtin
// environment setup), context for all per-run numbers above.
func BenchmarkEngineStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(Options{})
		if e == nil {
			b.Fatal("nil engine")
		}
	}
}

// ---- Hot-path micro-benchmarks ----
//
// The suite below pins the cost of the IC fast path itself (a hit must be
// a compare-and-load, paper §2.3) rather than whole-run figures. Each
// benchmark drives the interpreter through the public engine, then calls
// a pre-compiled JavaScript function directly via the VM so an iteration
// measures access-path cost, not engine or compile time. Run with
// -benchmem: the monomorphic variants are the 0 allocs/op contract that
// TestMonomorphicHitPathZeroAlloc enforces.

// benchClosure compiles src, runs it, and returns the VM plus the global
// function fn ready to call.
func benchClosure(tb testing.TB, src, fn string) (*vm.VM, objects.Value) {
	tb.Helper()
	return benchClosureOpts(tb, Options{}, src, fn)
}

// benchClosureOpts is benchClosure with explicit engine options — the
// quickened benchmark variants enable the bytecode overlay here. The
// setup run already executes the benchmark function once, so its hot
// sites are quickened (and pairs fused) before timing starts.
func benchClosureOpts(tb testing.TB, opts Options, src, fn string) (*vm.VM, objects.Value) {
	tb.Helper()
	e := NewEngine(opts)
	if err := e.Run("bench.js", src); err != nil {
		tb.Fatal(err)
	}
	v := e.VM()
	fval, ok := v.Global().GetNamed(fn)
	if !ok || !fval.IsCallable() {
		tb.Fatalf("benchmark function %q not defined", fn)
	}
	return v, fval
}

// callN invokes fn b.N times, failing on any JS error.
func callN(b *testing.B, v *vm.VM, fn objects.Value) {
	b.Helper()
	this := objects.Obj(v.Global())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.CallFunction(fn, this, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadNamedMono measures a monomorphic named-load site: one
// hidden class, LoadField handler, 128 loads per op.
func BenchmarkLoadNamedMono(b *testing.B) {
	v, fn := benchClosure(b, `
		var obj = {a: 1, b: 2, c: 3};
		function bench() {
			var t = 0;
			for (var i = 0; i < 128; i++) { t = t + obj.c; }
			return t;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// BenchmarkLoadNamedMonoQuickened is BenchmarkLoadNamedMono with the
// bytecode overlay on: the load site dispatches OpLoadNamedMonoFast with
// the field offset inline, skipping the site-table indirection. Compare
// against BenchmarkLoadNamedMono for the quickening win.
func BenchmarkLoadNamedMonoQuickened(b *testing.B) {
	v, fn := benchClosureOpts(b, Options{Quicken: true, Fuse: true}, `
		var obj = {a: 1, b: 2, c: 3};
		function bench() {
			var t = 0;
			for (var i = 0; i < 128; i++) { t = t + obj.c; }
			return t;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// dispatchLoopSrc is a loop dense in the fused pairs: the condition
// compiles to Lt+JumpIfFalse and the body to LoadLocal+LoadNamed, so the
// quickened variant runs mostly superinstructions.
const dispatchLoopSrc = `
	var obj = {n: 3};
	function bench() {
		var o = obj, t = 0;
		for (var i = 0; i < 256; i = i + 1) { t = t + o.n; }
		return t;
	}
	bench();`

// BenchmarkDispatchLoop is the plain-dispatch baseline for the loop above.
func BenchmarkDispatchLoop(b *testing.B) {
	v, fn := benchClosure(b, dispatchLoopSrc, "bench")
	callN(b, v, fn)
}

// BenchmarkDispatchLoopQuickened measures the same loop with quickening
// and superinstruction fusion enabled.
func BenchmarkDispatchLoopQuickened(b *testing.B) {
	v, fn := benchClosureOpts(b, Options{Quicken: true, Fuse: true}, dispatchLoopSrc, "bench")
	callN(b, v, fn)
}

// BenchmarkLoadNamedPoly measures a polymorphic site: four layouts cycle
// through one load site, so hits scan the slot's entry list.
func BenchmarkLoadNamedPoly(b *testing.B) {
	v, fn := benchClosure(b, `
		var shapes = [{x: 1}, {a: 1, x: 2}, {a: 1, b: 2, x: 3}, {a: 1, b: 2, c: 3, x: 4}];
		function bench() {
			var t = 0;
			for (var i = 0; i < 128; i++) { t = t + shapes[i % 4].x; }
			return t;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// BenchmarkLoadNamedMegamorphic measures a megamorphic site: more
// layouts than MaxPolymorphic force the generic access stub.
func BenchmarkLoadNamedMegamorphic(b *testing.B) {
	v, fn := benchClosure(b, `
		var shapes = [{x: 1}, {a: 1, x: 2}, {a: 1, b: 2, x: 3},
			{a: 1, b: 2, c: 3, x: 4}, {a: 1, b: 2, c: 3, d: 4, x: 5},
			{q: 1, x: 6}];
		function bench() {
			var t = 0;
			for (var i = 0; i < 128; i++) { t = t + shapes[i % 6].x; }
			return t;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// BenchmarkStoreNamedMono measures a monomorphic named-store site
// (StoreField overwrite of an existing property).
func BenchmarkStoreNamedMono(b *testing.B) {
	v, fn := benchClosure(b, `
		var obj = {a: 1, b: 2, c: 3};
		function bench() {
			for (var i = 0; i < 128; i++) { obj.b = i; }
			return obj.b;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// BenchmarkStoreTransition measures the add-property store path: each op
// builds 16 fresh objects of 4 properties, so every store walks the
// hidden-class transition table (warm: all target classes exist).
func BenchmarkStoreTransition(b *testing.B) {
	v, fn := benchClosure(b, `
		function bench() {
			var last;
			for (var i = 0; i < 16; i++) {
				var o = {};
				o.a = i; o.b = i; o.c = i; o.d = i;
				last = o;
			}
			return last;
		}
		bench();`, "bench")
	callN(b, v, fn)
}

// BenchmarkRecordDecode measures .ric decoding throughput over a real
// workload record (the per-session cost SessionPool amortizes).
func BenchmarkRecordDecode(b *testing.B) {
	p, _ := workloads.ByName("jQuery")
	cache := NewCodeCache()
	src := p.Source()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run(p.Script, src); err != nil {
		b.Fatal(err)
	}
	data := initial.ExtractRecord(p.Name).Encode()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ricjs.DecodeRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}
