package ricjs

import (
	"errors"
	"time"

	"ricjs/internal/recordserv"
)

// RemoteTierOptions configures how a SessionPool uses the distributed
// record service. The zero value of every field has a sane default.
type RemoteTierOptions struct {
	// ClaimTTL is the extraction lease this node requests on a cold key
	// (default recordserv.DefaultClaimTTL). If this process dies
	// mid-extraction, the lease expires and another node takes over.
	ClaimTTL time.Duration
	// WaitTimeout bounds how long a session waits for another node's
	// in-flight extraction before degrading to a conventional run
	// (default 2s). Only consulted when the pool's WaitForRecord is set.
	WaitTimeout time.Duration
	// PollInterval is how often a waiting session revalidates the key
	// against the service (default 50ms).
	PollInterval time.Duration
	// Sleep injects the wait clock for tests (default time.Sleep).
	Sleep func(time.Duration)
}

// RemoteTier adapts a recordserv.Client into the SessionPool's top
// storage tier. The pool's degradation ladder is, in order: remote
// service → local RecordStore → local extraction → conventional run.
// Every remote operation is best-effort — a dead, slow, partitioned, or
// lying record server can never fail a session, only push it down the
// ladder; the cost is bounded by the client's deadline/retry/breaker
// budget and visible in PoolStats and the trace.
type RemoteTier struct {
	c        *recordserv.Client
	claimTTL time.Duration
	waitFor  time.Duration
	poll     time.Duration
	sleep    func(time.Duration)
}

// NewRemoteTier wraps a record-service client for use as a pool tier.
func NewRemoteTier(client *recordserv.Client, opts RemoteTierOptions) *RemoteTier {
	if opts.ClaimTTL <= 0 {
		opts.ClaimTTL = recordserv.DefaultClaimTTL
	}
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 2 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &RemoteTier{
		c:        client,
		claimTTL: opts.ClaimTTL,
		waitFor:  opts.WaitTimeout,
		poll:     opts.PollInterval,
		sleep:    opts.Sleep,
	}
}

// DialRemoteTier is the one-line constructor: a default client for the
// service at baseURL, wrapped as a pool tier.
func DialRemoteTier(baseURL string) (*RemoteTier, error) {
	c, err := recordserv.NewClient(recordserv.Options{BaseURL: baseURL})
	if err != nil {
		return nil, err
	}
	return NewRemoteTier(c, RemoteTierOptions{}), nil
}

// Client returns the underlying record-service client (for its Stats and
// direct fetch/publish/invalidate use outside a pool).
func (r *RemoteTier) Client() *recordserv.Client { return r.c }

// remoteOutcome classifies one remote lookup for the pool's counters.
type remoteOutcome int

const (
	remoteHit remoteOutcome = iota
	remoteMiss
	remoteError
)

// fetch resolves key against the service and decodes the payload. Corrupt
// payloads — bytes that arrived "successfully" but fail the record
// codec's checksum, the wire-corruption case HTTP cannot detect — count
// as errors, and the poisoned fleet-cache entry is invalidated
// best-effort so it cannot keep serving.
func (r *RemoteTier) fetch(key string) (*Record, remoteOutcome) {
	data, _, err := r.c.Fetch(key)
	if err != nil {
		if errors.Is(err, recordserv.ErrNotFound) {
			return nil, remoteMiss
		}
		return nil, remoteError
	}
	rec, derr := DecodeRecord(data)
	if derr != nil {
		_ = r.c.Invalidate(key)
		return nil, remoteError
	}
	return rec, remoteHit
}

// claim asks for the cluster-wide extraction lease on key. granted=false
// with ok=true means another node holds it; ok=false means the service
// was unreachable and cluster coordination is off for this key.
func (r *RemoteTier) claim(key string) (granted, ok bool) {
	t, err := r.c.Claim(key, r.claimTTL)
	if err != nil {
		return false, false
	}
	return t.Granted, true
}

// release frees this node's lease after a failed extraction (publish
// releases implicitly).
func (r *RemoteTier) release(key string) { _ = r.c.Release(key) }

// publishRecord uploads an extracted record, returning false on any
// failure (including server-side rejection).
func (r *RemoteTier) publishRecord(key string, rec *Record) bool {
	_, err := r.c.Publish(key, rec.Encode())
	return err == nil
}

// awaitPublication polls for another node's in-flight extraction until it
// lands or the wait budget runs out. ETag revalidation makes the polls
// cheap: until the publication, each is a 404; after it, one transfer.
func (r *RemoteTier) awaitPublication(key string) (*Record, remoteOutcome) {
	deadline := time.Now().Add(r.waitFor)
	for {
		rec, outcome := r.fetch(key)
		if rec != nil {
			return rec, remoteHit
		}
		if outcome == remoteError && !r.c.Available() {
			// Breaker open: the service is gone, no point polling it.
			return nil, remoteError
		}
		if !time.Now().Before(deadline) {
			return nil, outcome
		}
		r.sleep(r.poll)
	}
}

// available reports whether the client's breaker admits requests.
func (r *RemoteTier) available() bool { return r.c.Available() }
