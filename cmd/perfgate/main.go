// Command perfgate enforces the deterministic performance baseline.
//
// The engine's instruction counts and record sizes are bit-for-bit
// reproducible (the profiler charges fixed costs per operation and the
// codec is deterministic), so they can be gated exactly, with zero flake —
// unlike wall-clock timings, which perfgate deliberately ignores. The gate
// diffs `conventionalInstructions`, `ricInstructions`, and `recordBytes`
// per workload against the committed BENCH_baseline.json and fails on any
// regression beyond the tolerance (default 2%). `typedFastHits` is gated
// in the opposite direction — it counts loads the Reuse run served through
// the typed-slot fast path, so a drop means typed-shape inference silently
// lost coverage. `quickenedExecutions` and `fusedExecutions` are floored
// the same way: they count dispatches served by quickened and fused
// opcodes in a quickened conventional run, so a drop means the bytecode
// overlay silently stopped engaging while outputs stayed correct.
//
// Usage:
//
//	ricbench -format json | perfgate -baseline BENCH_baseline.json
//	ricbench -format json | perfgate -baseline BENCH_baseline.json -write   # refresh after a legitimate improvement
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// gated is the reduced per-workload schema the baseline stores: only the
// deterministic counters, so timing noise never churns the committed file.
type gated struct {
	Name                     string `json:"name"`
	ConventionalInstructions uint64 `json:"conventionalInstructions"`
	RICInstructions          uint64 `json:"ricInstructions"`
	RecordBytes              uint64 `json:"recordBytes"`
	StaticTypes              struct {
		TypedFastHits uint64 `json:"typedFastHits"`
	} `json:"staticTypes"`
	QuickenedExecutions uint64 `json:"quickenedExecutions"`
	FusedExecutions     uint64 `json:"fusedExecutions"`
}

type baseline struct {
	Workloads []gated       `json:"workloads"`
	Load      *loadBaseline `json:"load,omitempty"`
}

// loadBaseline is the committed throughput floor for the open-loop load
// harness (`ricbench -load`). Unlike the exact counters above this is a
// wall-clock number, so it is gated as a conservative floor, not a diff:
// the measured sessions/sec must not drop below it. The committed floor is
// deliberately far under healthy throughput — it exists to catch the read
// path growing a lock or sessions serializing, which cuts throughput by
// integer factors, not percents.
type loadBaseline struct {
	SessionsPerSecFloor float64 `json:"sessionsPerSecFloor"`
}

// loadBlock is the slice of the ricbench `load` JSON block the gate reads.
type loadBlock struct {
	SessionsPerSec    float64 `json:"sessionsPerSec"`
	Failures          int     `json:"failures"`
	OutputMismatches  int     `json:"outputMismatches"`
	ShardLockAcquires uint64  `json:"shardLockAcquires"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	write := flag.Bool("write", false, "write the current numbers as the new baseline instead of checking")
	tolerance := flag.Float64("tolerance", 2.0, "maximum allowed regression, percent")
	flag.Parse()

	var bench struct {
		Libraries []gated    `json:"libraries"`
		Load      *loadBlock `json:"load,omitempty"`
		Errors    []string   `json:"errors,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(os.Stdin, 16<<20)).Decode(&bench); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: reading ricbench JSON from stdin:", err)
		os.Exit(2)
	}
	if len(bench.Libraries) == 0 {
		fmt.Fprintln(os.Stderr, "perfgate: no workloads in input (expected `ricbench -format json` output)")
		os.Exit(2)
	}
	current := baseline{Workloads: bench.Libraries}

	if *write {
		// The throughput floor is hand-tuned (it gates a wall-clock number
		// conservatively), so -write preserves a committed floor; a fresh
		// baseline seeds it at a quarter of the measured rate.
		if data, err := os.ReadFile(*baselinePath); err == nil {
			var old baseline
			if json.Unmarshal(data, &old) == nil && old.Load != nil {
				current.Load = old.Load
			}
		}
		if current.Load == nil && bench.Load != nil && bench.Load.SessionsPerSec > 0 {
			current.Load = &loadBaseline{SessionsPerSecFloor: bench.Load.SessionsPerSec / 4}
		}
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
		fmt.Printf("perfgate: wrote %s (%d workloads)\n", *baselinePath, len(current.Workloads))
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\nperfgate: generate it with: ricbench -format json | perfgate -baseline %s -write\n", err, *baselinePath)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	byName := make(map[string]gated, len(base.Workloads))
	for _, w := range base.Workloads {
		byName[w.Name] = w
	}

	regressions, improvements := 0, 0
	check := func(workload, metric string, old, now uint64) {
		if old == now {
			return
		}
		delta := (float64(now) - float64(old)) / float64(old) * 100
		switch {
		case delta > *tolerance:
			fmt.Printf("perfgate: REGRESSION %-14s %-26s %12d -> %12d  %+.2f%% (limit %+.2f%%)\n",
				workload, metric, old, now, delta, *tolerance)
			regressions++
		default:
			fmt.Printf("perfgate: change     %-14s %-26s %12d -> %12d  %+.2f%%\n",
				workload, metric, old, now, delta)
			if delta < 0 {
				improvements++
			}
		}
	}
	// checkFloor gates a counter where MORE is better (typed fast hits):
	// a drop beyond the tolerance means the typed pipeline silently lost
	// coverage, which no runtime test would catch — outputs stay correct.
	checkFloor := func(workload, metric string, old, now uint64) {
		if old == now {
			return
		}
		if old == 0 {
			// A metric absent from the committed baseline (0) appearing now
			// is a new capability, not a delta; -write records it.
			fmt.Printf("perfgate: change     %-14s %-26s %12d -> %12d  (new metric)\n",
				workload, metric, old, now)
			improvements++
			return
		}
		delta := (float64(now) - float64(old)) / float64(old) * 100
		if -delta > *tolerance {
			fmt.Printf("perfgate: REGRESSION %-14s %-26s %12d -> %12d  %+.2f%% (floor %+.2f%%)\n",
				workload, metric, old, now, delta, -*tolerance)
			regressions++
			return
		}
		fmt.Printf("perfgate: change     %-14s %-26s %12d -> %12d  %+.2f%%\n",
			workload, metric, old, now, delta)
		if delta > 0 {
			improvements++
		}
	}
	for _, w := range current.Workloads {
		old, ok := byName[w.Name]
		if !ok {
			fmt.Printf("perfgate: new workload %q not in baseline\n", w.Name)
			regressions++
			continue
		}
		delete(byName, w.Name)
		check(w.Name, "conventionalInstructions", old.ConventionalInstructions, w.ConventionalInstructions)
		check(w.Name, "ricInstructions", old.RICInstructions, w.RICInstructions)
		check(w.Name, "recordBytes", old.RecordBytes, w.RecordBytes)
		checkFloor(w.Name, "typedFastHits", old.StaticTypes.TypedFastHits, w.StaticTypes.TypedFastHits)
		checkFloor(w.Name, "quickenedExecutions", old.QuickenedExecutions, w.QuickenedExecutions)
		checkFloor(w.Name, "fusedExecutions", old.FusedExecutions, w.FusedExecutions)
	}
	for name := range byName {
		fmt.Printf("perfgate: workload %q disappeared from the benchmark\n", name)
		regressions++
	}

	// Throughput floor: only checked when the input carries a load block
	// (i.e. ricbench ran with -load) and the baseline commits a floor.
	switch {
	case base.Load == nil || base.Load.SessionsPerSecFloor <= 0:
		// No committed floor; nothing to gate.
	case bench.Load == nil:
		fmt.Println("perfgate: note: baseline has a throughput floor but input has no load block (run ricbench with -load); floor not checked")
	default:
		lb := bench.Load
		if lb.Failures > 0 || lb.OutputMismatches > 0 {
			fmt.Printf("perfgate: REGRESSION load: %d failed sessions, %d output mismatches\n", lb.Failures, lb.OutputMismatches)
			regressions++
		}
		if lb.SessionsPerSec < base.Load.SessionsPerSecFloor {
			fmt.Printf("perfgate: REGRESSION load sessionsPerSec %.2f below floor %.2f\n",
				lb.SessionsPerSec, base.Load.SessionsPerSecFloor)
			regressions++
		} else {
			fmt.Printf("perfgate: load sessionsPerSec %.2f >= floor %.2f\n",
				lb.SessionsPerSec, base.Load.SessionsPerSecFloor)
		}
	}
	for _, e := range bench.Errors {
		fmt.Printf("perfgate: REGRESSION ricbench reported error: %s\n", e)
		regressions++
	}

	switch {
	case regressions > 0:
		fmt.Printf("perfgate: FAIL: %d regression(s)\n", regressions)
		os.Exit(1)
	case improvements > 0:
		fmt.Printf("perfgate: PASS with %d improvement(s) — refresh the baseline with -write and commit it\n", improvements)
	default:
		fmt.Printf("perfgate: PASS: %d workloads match the baseline\n", len(current.Workloads))
	}
}
