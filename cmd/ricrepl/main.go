// Command ricrepl is an interactive read-eval-print loop over the engine,
// with live inline-cache introspection.
//
// Each input line (or multi-line block while brackets stay open) runs in
// a persistent engine, so hidden classes and IC state accumulate across
// inputs. Expression inputs print their value.
//
// Meta commands:
//
//	:stats     print the engine's IC statistics
//	:ic        dump the populated ICVector slots
//	:record F  extract an ICRecord and write it to file F
//	:quit      exit
//
// Start with -reuse FILE to run against a previously extracted record.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ricjs"
	"ricjs/internal/parser"
)

func main() {
	reuseIn := flag.String("reuse", "", "run with the ICRecord read from this file")
	maxSteps := flag.Uint64("max-steps", 50_000_000, "per-engine step budget (0 = unlimited)")
	flag.Parse()

	opts := ricjs.Options{Stdout: os.Stdout, MaxSteps: *maxSteps}
	if *reuseIn != "" {
		data, err := os.ReadFile(*reuseIn)
		if err != nil {
			fail(err)
		}
		rec, err := ricjs.DecodeRecord(data)
		if err != nil {
			fail(err)
		}
		opts.Record = rec
		fmt.Fprintf(os.Stderr, "loaded record %q\n", rec.Label())
	}
	engine := ricjs.NewEngine(opts)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	seq := 0
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(os.Stderr, "ric> ")
		} else {
			fmt.Fprint(os.Stderr, "...> ")
		}
	}

	prompt()
	for in.Scan() {
		line := in.Text()
		if pending.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), ":") {
			if quit := metaCommand(engine, strings.TrimSpace(line)); quit {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		src := pending.String()
		if bracketsOpen(src) {
			prompt()
			continue
		}
		pending.Reset()

		seq++
		name := fmt.Sprintf("repl-%d.js", seq)
		if err := engine.Run(name, wrapExpression(name, src)); err != nil {
			fmt.Fprintln(os.Stderr, trimErr(err.Error()))
		}
		prompt()
	}
}

// wrapExpression turns pure-expression inputs into prints so the REPL
// echoes values; statements pass through unchanged.
func wrapExpression(name, src string) string {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return src
	}
	// Heuristic: if wrapping in print(...) still parses, and the input
	// parsed as a single expression statement, echo it.
	prog, err := parser.Parse(name, src)
	if err != nil || len(prog.Body) != 1 {
		return src
	}
	candidate := "print((" + strings.TrimSuffix(trimmed, ";") + "));"
	if _, err := parser.Parse(name, candidate); err != nil {
		return src
	}
	if !looksLikeExpression(trimmed) {
		return src
	}
	return candidate
}

// looksLikeExpression rejects obvious statements.
func looksLikeExpression(s string) bool {
	for _, kw := range []string{"var ", "function ", "if", "for", "while", "do",
		"return", "throw", "try", "switch", "break", "continue", "print"} {
		if strings.HasPrefix(s, kw) {
			return false
		}
	}
	return true
}

// bracketsOpen reports whether the input still has unbalanced brackets
// (ignoring strings and comments coarsely — good enough for a REPL).
func bracketsOpen(src string) bool {
	depth := 0
	var inStr byte
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(', '{', '[':
			depth++
		case ')', '}', ']':
			depth--
		case '/':
			if i+1 < len(src) && src[i+1] == '/' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			}
		}
	}
	return depth > 0
}

// metaCommand handles :commands; returns true to quit.
func metaCommand(engine *ricjs.Engine, cmd string) bool {
	switch {
	case cmd == ":quit" || cmd == ":q":
		return true
	case cmd == ":stats":
		s := engine.Stats()
		fmt.Fprintf(os.Stderr, "IC: %d accesses, %d hits, %d misses (%.2f%%); %d hidden classes; %d instr\n",
			s.ICAccesses(), s.ICHits, s.ICMisses, s.MissRate(), s.HCCreated, s.TotalInstr())
		if s.MissesSaved > 0 {
			fmt.Fprintf(os.Stderr, "RIC: %d misses averted, %d validations\n", s.MissesSaved, s.Validations)
		}
	case cmd == ":ic":
		fmt.Fprint(os.Stderr, engine.ICState())
	case strings.HasPrefix(cmd, ":record "):
		path := strings.TrimSpace(strings.TrimPrefix(cmd, ":record "))
		rec := engine.ExtractRecord("repl")
		if err := os.WriteFile(path, rec.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			break
		}
		s := rec.Stats()
		fmt.Fprintf(os.Stderr, "wrote %s (%d HCs, %d dependents)\n", path, s.HiddenClasses, s.DependentSlots)
	default:
		fmt.Fprintln(os.Stderr, "commands: :stats :ic :record FILE :quit")
	}
	return false
}

func trimErr(s string) string {
	if i := strings.Index(s, ": "); i >= 0 && strings.HasPrefix(s, "ricjs:") {
		return s[i+2:]
	}
	return s
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ricrepl:", err)
	os.Exit(1)
}
