// Command opcheck checks the bytecode instruction set for exhaustive
// handling: every bytecode.Op must have a disassembly mnemonic, a VM
// dispatch case, and a transfer function in the static shape analysis.
// ci.sh runs it right after go vet:
//
//	go run ./cmd/opcheck ./internal/bytecode ./internal/vm ./internal/analysis
package main

import (
	"ricjs/internal/lint/opcheck"
	"ricjs/internal/lint/singlechecker"
)

func main() { singlechecker.Main(opcheck.NewAnalyzer()) }
