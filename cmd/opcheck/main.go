// Command opcheck checks the bytecode instruction set for exhaustive
// handling: every bytecode.Op must have a disassembly mnemonic, a VM
// dispatch case, a transfer function in the static shape analysis
// (opcheck analyzer), and a case in the opValueKind value-type table
// that decides typed-shape claims (typecheck-transfer analyzer).
// ci.sh runs it right after go vet:
//
//	go run ./cmd/opcheck ./internal/bytecode ./internal/vm ./internal/analysis
package main

import (
	"ricjs/internal/lint/opcheck"
	"ricjs/internal/lint/singlechecker"
	"ricjs/internal/lint/typecheck"
)

func main() {
	singlechecker.Main(opcheck.NewAnalyzer(), typecheck.NewAnalyzer())
}
