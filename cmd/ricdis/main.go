// Command ricdis compiles JavaScript files and prints their bytecode,
// constant pools, and object-access-site tables — the feedback slots the
// ICVector is built from.
//
// With -analyze, the static shape analysis runs over all files jointly
// (scripts share the global object) and each site's predicted hidden-class
// set is printed alongside the site table, each hidden class annotated
// with the slot types the value-type lattice inferred for it ("typed
// shapes" — the claims a .ric record would carry). Predictions are listed
// deterministically: sites in table order, hidden classes by shape id.
//
// With -quicken, the files are executed (jointly, sharing one VM) with
// bytecode quickening and superinstruction fusion enabled, and the
// listing shows the VM's live executable overlay: every rewritten opcode
// word prints as `base-op [overlay-op]`, operands and annotations stay
// canonical. Functions that never ran have no overlay and print plainly.
//
// Usage:
//
//	ricdis script.js [more.js ...]
//	ricdis -sites script.js        # only the site table
//	ricdis -analyze lib.js app.js  # site tables with shape predictions
//	ricdis -quicken hot.js         # live quickened/fused overlay listing
//
// Every file is processed even when an earlier one fails; the exit status
// is 1 if any did.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/objects"
	"ricjs/internal/parser"
	"ricjs/internal/vm"
)

// quickenMaxSteps bounds -quicken execution so a hot loop in the input
// cannot hang the disassembler.
const quickenMaxSteps = 10_000_000

func main() {
	sitesOnly := flag.Bool("sites", false, "print only the object access site tables")
	analyze := flag.Bool("analyze", false, "run the static shape analysis and print per-site predictions")
	quicken := flag.Bool("quicken", false, "execute the files with quickening+fusion and print the live overlay disassembly")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ricdis [-sites] [-analyze] [-quicken] script.js [more.js ...]")
		os.Exit(2)
	}
	os.Exit(run(os.Stdout, os.Stderr, *sitesOnly, *analyze, *quicken, flag.Args()))
}

// run is main minus the process plumbing, so the golden test can drive it.
func run(out, errw io.Writer, sitesOnly, analyze, quicken bool, paths []string) int {
	// Compile everything first: -analyze needs the whole program, and a
	// broken file must not hide errors in the ones after it.
	type unit struct {
		path string
		prog *bytecode.Program
	}
	var units []unit
	failed := false
	for _, path := range paths {
		prog, err := compileFile(path)
		if err != nil {
			fmt.Fprintln(errw, "ricdis:", err)
			failed = true
			continue
		}
		units = append(units, unit{path: path, prog: prog})
	}

	// -quicken executes everything on one overlay-enabled VM first; the
	// prints go nowhere visible (the VM buffers output), only the rewritten
	// executable copies matter here.
	var qvm *vm.VM
	if quicken && len(units) > 0 {
		qvm = vm.New(vm.Options{Quicken: true, Fuse: true, MaxSteps: quickenMaxSteps})
		for _, u := range units {
			if _, err := qvm.RunProgram(u.prog); err != nil {
				fmt.Fprintf(errw, "ricdis: %s: %v\n", u.path, err)
				failed = true
			}
		}
	}

	var res *analysis.Result
	if analyze && len(units) > 0 {
		progs := make([]*bytecode.Program, len(units))
		for i, u := range units {
			progs[i] = u.prog
		}
		res = analysis.Analyze(progs...)
		if res.GlobalTop() {
			fmt.Fprintln(errw, "ricdis: warning: analysis widened to ⊤; predictions are vacuous")
		}
	}

	for _, u := range units {
		u.prog.Toplevel.WalkProtos(func(p *bytecode.FuncProto) {
			if !sitesOnly && !analyze {
				if qvm != nil {
					if live := qvm.ExecCode(p); live != nil {
						fmt.Fprint(out, p.DisassembleOverlay(live))
					} else {
						fmt.Fprint(out, p.Disassemble())
					}
				} else {
					fmt.Fprint(out, p.Disassemble())
				}
			}
			printSites(out, p, res)
			if !sitesOnly && !analyze {
				fmt.Fprintln(out)
			}
		})
	}
	if failed {
		return 1
	}
	return 0
}

func compileFile(path string) (*bytecode.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(filepath.Base(path), string(src))
	if err != nil {
		return nil, err
	}
	return bytecode.Compile(prog)
}

func printSites(out io.Writer, p *bytecode.FuncProto, res *analysis.Result) {
	if len(p.Sites) == 0 {
		return
	}
	fmt.Fprintf(out, "sites of %s:\n", p.FunctionName())
	for i, s := range p.Sites {
		fmt.Fprintf(out, "  [%d] %s %s %q", i, s.Site, s.Kind, s.Name)
		if res != nil {
			fmt.Fprintf(out, "  %s", predictionText(res, res.At(s.Site)))
		}
		fmt.Fprintln(out)
	}
}

// predictionText renders one site prediction for the -analyze listing:
// the predicted hidden classes by shape id, each with its inferred slot
// types.
func predictionText(res *analysis.Result, pred *analysis.SitePrediction) string {
	if pred == nil {
		return "(no prediction)"
	}
	switch {
	case pred.Dead:
		return "dead"
	case pred.Top:
		return "⊤"
	}
	shapes := append([]*analysis.Shape(nil), pred.Shapes...)
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].ID < shapes[j].ID })
	names := make([]string, len(shapes))
	for i, s := range shapes {
		names[i] = s.String() + typedText(res, s)
	}
	text := "{" + strings.Join(names, ", ") + "}"
	if pred.MegamorphicRisk {
		text += " megamorphic-risk"
	}
	if pred.MaybeDictionary {
		text += " maybe-dictionary"
	}
	return text
}

// typedText renders a shape's inferred slot types ("<x:smallint,y:float>"),
// or "" when no slot is typed. Fields print in offset order.
func typedText(res *analysis.Result, s *analysis.Shape) string {
	tags := res.SlotTypes(s)
	var parts []string
	for off, t := range tags {
		if off < s.NumFields() && objects.ValidSlotTag(t) {
			parts = append(parts, s.Fields[off]+":"+t.String())
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "<" + strings.Join(parts, ",") + ">"
}
