// Command ricdis compiles JavaScript files and prints their bytecode,
// constant pools, and object-access-site tables — the feedback slots the
// ICVector is built from.
//
// With -analyze, the static shape analysis runs over all files jointly
// (scripts share the global object) and each site's predicted hidden-class
// set is printed alongside the site table.
//
// Usage:
//
//	ricdis script.js [more.js ...]
//	ricdis -sites script.js        # only the site table
//	ricdis -analyze lib.js app.js  # site tables with shape predictions
//
// Every file is processed even when an earlier one fails; the exit status
// is 1 if any did.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/parser"
)

func main() {
	sitesOnly := flag.Bool("sites", false, "print only the object access site tables")
	analyze := flag.Bool("analyze", false, "run the static shape analysis and print per-site predictions")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ricdis [-sites] [-analyze] script.js [more.js ...]")
		os.Exit(2)
	}

	// Compile everything first: -analyze needs the whole program, and a
	// broken file must not hide errors in the ones after it.
	type unit struct {
		path string
		prog *bytecode.Program
	}
	var units []unit
	failed := false
	for _, path := range flag.Args() {
		prog, err := compileFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricdis:", err)
			failed = true
			continue
		}
		units = append(units, unit{path: path, prog: prog})
	}

	var res *analysis.Result
	if *analyze && len(units) > 0 {
		progs := make([]*bytecode.Program, len(units))
		for i, u := range units {
			progs[i] = u.prog
		}
		res = analysis.Analyze(progs...)
		if res.GlobalTop() {
			fmt.Fprintln(os.Stderr, "ricdis: warning: analysis widened to ⊤; predictions are vacuous")
		}
	}

	for _, u := range units {
		u.prog.Toplevel.WalkProtos(func(p *bytecode.FuncProto) {
			if !*sitesOnly && !*analyze {
				fmt.Print(p.Disassemble())
			}
			printSites(p, res)
			if !*sitesOnly && !*analyze {
				fmt.Println()
			}
		})
	}
	if failed {
		os.Exit(1)
	}
}

func compileFile(path string) (*bytecode.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(filepath.Base(path), string(src))
	if err != nil {
		return nil, err
	}
	return bytecode.Compile(prog)
}

func printSites(p *bytecode.FuncProto, res *analysis.Result) {
	if len(p.Sites) == 0 {
		return
	}
	fmt.Printf("sites of %s:\n", p.FunctionName())
	for i, s := range p.Sites {
		fmt.Printf("  [%d] %s %s %q", i, s.Site, s.Kind, s.Name)
		if res != nil {
			fmt.Printf("  %s", predictionText(res.At(s.Site)))
		}
		fmt.Println()
	}
}

// predictionText renders one site prediction for the -analyze listing.
func predictionText(pred *analysis.SitePrediction) string {
	if pred == nil {
		return "(no prediction)"
	}
	switch {
	case pred.Dead:
		return "dead"
	case pred.Top:
		return "⊤"
	}
	names := make([]string, len(pred.Shapes))
	for i, s := range pred.Shapes {
		names[i] = s.String()
	}
	text := "{" + strings.Join(names, ", ") + "}"
	if pred.MegamorphicRisk {
		text += " megamorphic-risk"
	}
	if pred.MaybeDictionary {
		text += " maybe-dictionary"
	}
	return text
}
