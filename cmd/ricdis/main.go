// Command ricdis compiles JavaScript files and prints their bytecode,
// constant pools, and object-access-site tables — the feedback slots the
// ICVector is built from.
//
// Usage:
//
//	ricdis script.js [more.js ...]
//	ricdis -sites script.js      # only the site table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ricjs/internal/bytecode"
	"ricjs/internal/parser"
)

func main() {
	sitesOnly := flag.Bool("sites", false, "print only the object access site tables")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ricdis [-sites] script.js [more.js ...]")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		name := filepath.Base(path)
		prog, err := parser.Parse(name, string(src))
		if err != nil {
			fail(err)
		}
		compiled, err := bytecode.Compile(prog)
		if err != nil {
			fail(err)
		}
		compiled.Toplevel.WalkProtos(func(p *bytecode.FuncProto) {
			if *sitesOnly {
				printSites(p)
				return
			}
			fmt.Print(p.Disassemble())
			printSites(p)
			fmt.Println()
		})
	}
}

func printSites(p *bytecode.FuncProto) {
	if len(p.Sites) == 0 {
		return
	}
	fmt.Printf("sites of %s:\n", p.FunctionName())
	for i, s := range p.Sites {
		fmt.Printf("  [%d] %s %s %q\n", i, s.Site, s.Kind, s.Name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ricdis:", err)
	os.Exit(1)
}
