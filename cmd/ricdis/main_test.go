package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden -analyze listing")

// TestAnalyzeGolden pins the -analyze listing for the point fixture: site
// order, shape-id order, and the typed-slot annotations are all
// deterministic, so the listing is byte-stable. Regenerate deliberately:
//
//	go test ./cmd/ricdis -run TestAnalyzeGolden -update
func TestAnalyzeGolden(t *testing.T) {
	var out, errw bytes.Buffer
	if rc := run(&out, &errw, false, true, false, []string{"../../testdata/point.js"}); rc != 0 {
		t.Fatalf("ricdis -analyze failed (rc %d): %s", rc, errw.String())
	}
	if errw.Len() != 0 {
		t.Fatalf("unexpected warnings: %s", errw.String())
	}
	golden := filepath.Join("testdata", "point-analyze.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("-analyze listing drifted from golden (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
	// The listing must actually exercise the typed annotations — an empty
	// match would pass vacuously if inference silently stopped producing
	// claims.
	if !bytes.Contains(out.Bytes(), []byte(":float")) && !bytes.Contains(out.Bytes(), []byte(":smallint")) {
		t.Fatal("golden listing contains no typed-slot annotations")
	}
}

// TestQuickenGolden pins the -quicken overlay listing for the same
// fixture: the VM's in-place rewrites are deterministic for a
// deterministic program, so the `base-op [overlay-op]` annotations are
// byte-stable. Regenerate deliberately:
//
//	go test ./cmd/ricdis -run TestQuickenGolden -update
func TestQuickenGolden(t *testing.T) {
	var out, errw bytes.Buffer
	if rc := run(&out, &errw, false, false, true, []string{"../../testdata/point.js"}); rc != 0 {
		t.Fatalf("ricdis -quicken failed (rc %d): %s", rc, errw.String())
	}
	if errw.Len() != 0 {
		t.Fatalf("unexpected warnings: %s", errw.String())
	}
	golden := filepath.Join("testdata", "point-quicken.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("-quicken listing drifted from golden (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
	// The fixture's hot loops must actually quicken and fuse — a listing
	// with no overlay annotations would pass vacuously if the rewrite
	// stopped engaging.
	for _, marker := range []string{"[LoadNamedMonoFast]", "[Fused"} {
		if !bytes.Contains(out.Bytes(), []byte(marker)) {
			t.Fatalf("golden listing contains no %q annotation:\n%s", marker, out.Bytes())
		}
	}
}
