// Command ricjs runs JavaScript files on the engine, optionally producing
// an ICRecord after the run (the Initial run + extraction phase) or
// consuming one (the Reuse run).
//
// Usage:
//
//	ricjs script.js                      # plain run
//	ricjs -record lib.ric lib.js         # Initial run; extract record
//	ricjs -reuse lib.ric lib.js          # Reuse run with the record
//	ricjs -stats lib.js                  # print IC statistics
//	ricjs -trace out.jsonl lib.js        # write the structured IC-event trace
//	ricjs -dump lib.ric                  # inspect a record file
//
// Several scripts can be given; they run in order in one engine, like a
// website loading several libraries.
//
// The trace file is JSONL (one event per line) by default;
// -trace-format chrome writes the Chrome trace_event format instead, which
// chrome://tracing and https://ui.perfetto.dev load directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ricjs"
	"ricjs/internal/trace"
)

func main() {
	var (
		recordOut = flag.String("record", "", "after the run, extract an ICRecord and write it to this file")
		reuseIn   = flag.String("reuse", "", "run with the ICRecord read from this file")
		stats     = flag.Bool("stats", false, "print IC statistics after the run")
		icstate   = flag.Bool("icstate", false, "dump the final ICVector states after the run")
		globals   = flag.Bool("globals", false, "include global-object state in RIC extraction")
		dump      = flag.String("dump", "", "print a summary of a record file and exit")
		traceOut  = flag.String("trace", "", "write the structured IC-event trace to this file")
		traceFmt  = flag.String("trace-format", "jsonl", "trace file format: jsonl or chrome (chrome://tracing / Perfetto)")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpRecord(*dump); err != nil {
			fail(err)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ricjs [flags] script.js [more.js ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *recordOut != "" && *reuseIn != "" {
		fail(fmt.Errorf("-record and -reuse are mutually exclusive (an Initial run builds a record; a Reuse run consumes one)"))
	}

	opts := ricjs.Options{Stdout: os.Stdout, IncludeGlobals: *globals}
	if *traceOut != "" {
		if *traceFmt != "jsonl" && *traceFmt != "chrome" {
			fail(fmt.Errorf("unknown -trace-format %q (want jsonl or chrome)", *traceFmt))
		}
		opts.Trace = ricjs.NewTrace(0)
	}
	if *reuseIn != "" {
		data, err := os.ReadFile(*reuseIn)
		if err != nil {
			fail(err)
		}
		rec, err := ricjs.DecodeRecord(data)
		if err != nil {
			fail(err)
		}
		opts.Record = rec
	}

	engine := ricjs.NewEngine(opts)
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		if err := engine.Run(filepath.Base(path), string(src)); err != nil {
			fail(err)
		}
	}

	if *recordOut != "" {
		rec := engine.ExtractRecord(filepath.Base(flag.Arg(0)))
		if err := os.WriteFile(*recordOut, rec.Encode(), 0o644); err != nil {
			fail(err)
		}
		s := rec.Stats()
		fmt.Fprintf(os.Stderr, "ricjs: wrote %s: %d hidden classes, %d triggering sites, %d dependent slots\n",
			*recordOut, s.HiddenClasses, s.TriggeringSites, s.DependentSlots)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, *traceFmt, engine.Trace()); err != nil {
			fail(err)
		}
	}

	if *stats {
		printStats(engine)
	}
	if *icstate {
		fmt.Fprint(os.Stderr, engine.ICState())
	}
}

// writeTrace exports the run's event stream in the requested format.
func writeTrace(path, format string, buf *trace.Buffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := buf.Events()
	if format == "chrome" {
		err = trace.WriteChromeTrace(f, events)
	} else {
		err = trace.WriteJSONL(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if dropped := buf.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "ricjs: trace ring dropped %d early events (of %d); aggregate counts are unaffected\n",
			dropped, buf.Len())
	}
	return nil
}

func printStats(e *ricjs.Engine) {
	s := e.Stats()
	fmt.Fprintf(os.Stderr, "instructions: %d (rest %d, ic-miss %d, miss share %.1f%%)\n",
		s.TotalInstr(), s.InstrRest, s.InstrICMiss, 100*s.ICMissShare())
	fmt.Fprintf(os.Stderr, "IC: %d accesses, %d hits, %d misses (rate %.2f%%)\n",
		s.ICAccesses(), s.ICHits, s.ICMisses, s.MissRate())
	fmt.Fprintf(os.Stderr, "miss breakdown: handler %d, global %d, other %d\n",
		s.MissHandler, s.MissGlobal, s.MissOther)
	fmt.Fprintf(os.Stderr, "hidden classes created: %d; handlers: %d (%.1f%% context-independent)\n",
		s.HCCreated, s.HandlersMade, s.ContextIndependentShare())
	if s.Preloads > 0 || s.Validations > 0 {
		fmt.Fprintf(os.Stderr, "RIC: %d validations (%d failures), %d preloads, %d misses averted\n",
			s.Validations, s.ValFailures, s.Preloads, s.MissesSaved)
	}
	if s.TypedFastHits > 0 {
		fmt.Fprintf(os.Stderr, "typed slots: %d loads served through the typed fast path\n",
			s.TypedFastHits)
	}
}

func dumpRecord(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := ricjs.DecodeRecord(data)
	if err != nil {
		return err
	}
	s := rec.Stats()
	fmt.Printf("ICRecord %q (%d bytes)\n", rec.Label(), len(data))
	fmt.Printf("  hidden classes:    %d\n", s.HiddenClasses)
	fmt.Printf("  triggering sites:  %d\n", s.TriggeringSites)
	fmt.Printf("  builtin entries:   %d\n", s.BuiltinEntries)
	fmt.Printf("  dependent slots:   %d\n", s.DependentSlots)
	fmt.Printf("  rejected sites:    %d (context-dependent handlers)\n", s.RejectedSites)
	fmt.Printf("  typed slot claims: %d\n", s.TypedSlotClaims)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ricjs:", err)
	os.Exit(1)
}
