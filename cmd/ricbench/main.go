// Command ricbench regenerates every table and figure of the paper's
// evaluation against the engine in this repository.
//
// Usage:
//
//	ricbench                  # all experiments
//	ricbench -table1          # one experiment
//	ricbench -reps 9          # more timing repetitions
//	ricbench -ablation        # design-choice ablations
//	ricbench -cpuprofile cpu.pprof -memprofile mem.pprof  # profile the run
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ricjs/internal/bench"
)

func main() {
	var (
		fig1       = flag.Bool("fig1", false, "Figure 1: motivation trend data")
		fig5       = flag.Bool("fig5", false, "Figure 5: instruction breakdown during initialization")
		table1     = flag.Bool("table1", false, "Table 1: IC statistics in the Initial run")
		table4     = flag.Bool("table4", false, "Table 4: IC miss rates, Initial vs Reuse")
		fig8       = flag.Bool("fig8", false, "Figure 8: normalized instruction count of Reuse runs")
		fig9       = flag.Bool("fig9", false, "Figure 9: normalized execution time of Reuse runs")
		overheads  = flag.Bool("overheads", false, "Section 7.3: extraction time and record size")
		websites   = flag.Bool("websites", false, "cross-website reuse robustness")
		ablation   = flag.Bool("ablation", false, "design-choice ablations")
		faults     = flag.Bool("faults", false, "fault-injection sweep: corrupted records vs conventional runs")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the deterministic fault injector")
		netFaults  = flag.Bool("netfaults", false, "network chaos sweep: pooled sessions with a faulted remote record tier vs conventional runs")
		snapshotF  = flag.Bool("snapshot", false, "compare RIC with heap-snapshot restoration (§9)")
		traceF     = flag.Bool("trace", false, "structured IC-event totals, Initial vs Reuse run")
		opstatsF   = flag.Bool("opstats", false, "executed-opcode and adjacent-pair dispatch histogram (superinstruction selection evidence)")
		reps       = flag.Int("reps", 5, "timing repetitions per Reuse run (median reported)")
		workloadsF = flag.String("workloads", "", "glob over workload names or kinds to measure (e.g. 'Json*', 'keyed'; default all)")
		parallel   = flag.Int("parallel", 0, "throughput mode: serve the workload set through a SessionPool with N workers (also measures 1 worker as the scaling baseline)")
		sessions   = flag.Int("sessions", 0, "sessions per throughput measurement (default 8 per library)")
		loadF      = flag.Bool("load", false, "open-loop load mode: seeded Poisson/Zipf session traffic through a SessionPool, reporting latency percentiles and throughput")
		loadSess   = flag.Int("load-sessions", 0, "sessions per load run (default 1000)")
		loadRate   = flag.Float64("load-rate", 0, "mean arrival rate, sessions/sec (default 200)")
		loadSeed   = flag.Uint64("load-seed", 1, "seed for the load schedule (arrivals and key choice)")
		loadZipf   = flag.Float64("load-zipf", 0, "Zipf skew exponent over the key universe (default 1.1)")
		loadCold   = flag.Int("load-cold", 8, "progen-generated cold keys appended to the 7 libraries (0 disables)")
		loadWarm   = flag.Bool("load-warmstart", false, "serve load sessions by snapshot restore where the workload permits")
		format     = flag.String("format", "text", "output format: text or json (json runs the full evaluation)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Profiling hooks so hot-path claims in perf changes are inspectable
	// with `go tool pprof` against the very binary that produced the
	// evaluation numbers. Deferred teardown runs on every exit path below
	// except the os.Exit error paths, which have nothing worth profiling.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench: -cpuprofile:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ricbench: -cpuprofile:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ricbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ricbench: -memprofile:", err)
			}
		}()
	}

	loadConfig := func() bench.LoadConfig {
		cold := *loadCold
		if cold == 0 {
			cold = -1 // LoadConfig normalizes 0 to the default; <0 disables
		}
		return bench.LoadConfig{
			Seed:      *loadSeed,
			Sessions:  *loadSess,
			Rate:      *loadRate,
			ZipfS:     *loadZipf,
			ColdKeys:  cold,
			WarmStart: *loadWarm,
		}
	}

	measureThroughput := func() []bench.ThroughputResult {
		counts := []int{1}
		if *parallel > 1 {
			counts = append(counts, *parallel)
		}
		results, err := bench.MeasureThroughputScaling(counts, *sessions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		return results
	}

	if *format == "json" {
		// The core evaluation failing emits nothing (plus a nonzero exit);
		// a failed optional block lands in the document's `errors` field
		// instead of truncating it. Either way stdout never carries a
		// partial JSON document: the whole document is marshaled to memory
		// and written in one piece at the end.
		runs, err := bench.MeasureAll(bench.Options{Reps: *reps, Workloads: *workloadsF})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		wr, err := bench.MeasureWebsites(bench.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		res := bench.BuildJSON(runs, &wr)
		exit := 0
		if *parallel > 0 {
			counts := []int{1}
			if *parallel > 1 {
				counts = append(counts, *parallel)
			}
			results, terr := bench.MeasureThroughputScaling(counts, *sessions)
			if terr != nil {
				res.Errors = append(res.Errors, "throughput: "+terr.Error())
				exit = 1
			} else {
				res.AddThroughput(results)
				for _, t := range results {
					if t.Failures > 0 {
						res.Errors = append(res.Errors, fmt.Sprintf("throughput: %d of %d sessions failed at %d workers", t.Failures, t.Sessions, t.Workers))
						exit = 1
					}
				}
			}
		}
		if *opstatsF {
			os, oerr := bench.MeasureOpStats(bench.Options{Workloads: *workloadsF})
			if oerr != nil {
				res.Errors = append(res.Errors, "opstats: "+oerr.Error())
				exit = 1
			} else {
				res.AddOpStats(os)
			}
		}
		if *loadF {
			lr, lerr := bench.MeasureLoad(loadConfig())
			if lerr != nil {
				res.Errors = append(res.Errors, "load: "+lerr.Error())
				exit = 1
			} else {
				res.AddLoad(lr)
				if lr.Failures > 0 || lr.OutputMismatches > 0 {
					res.Errors = append(res.Errors, fmt.Sprintf("load: %d of %d sessions failed, %d output mismatches", lr.Failures, lr.Arrivals, lr.OutputMismatches))
					exit = 1
				}
			}
		}
		var buf bytes.Buffer
		if err := bench.EncodeJSON(&buf, res); err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		if exit != 0 {
			os.Exit(exit)
		}
		return
	}
	if *format != "text" {
		fmt.Fprintf(os.Stderr, "ricbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	all := !(*fig1 || *fig5 || *table1 || *table4 || *fig8 || *fig9 ||
		*overheads || *websites || *ablation || *snapshotF || *faults ||
		*netFaults || *traceF || *opstatsF || *parallel > 0 || *loadF)

	needRuns := all || *fig5 || *table1 || *table4 || *fig8 || *fig9 || *overheads
	var runs []bench.LibraryRun
	if needRuns {
		var err error
		runs, err = bench.MeasureAll(bench.Options{Reps: *reps, Workloads: *workloadsF})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
	}

	section := func(enabled bool, f func()) {
		if all || enabled {
			f()
			fmt.Println()
		}
	}

	section(*fig1, func() { bench.ReportFigure1(os.Stdout) })
	section(*fig5, func() { bench.ReportFigure5(os.Stdout, runs) })
	section(*table1, func() { bench.ReportTable1(os.Stdout, runs) })
	section(*table4, func() { bench.ReportTable4(os.Stdout, runs) })
	section(*fig8, func() { bench.ReportFigure8(os.Stdout, runs) })
	section(*fig9, func() { bench.ReportFigure9(os.Stdout, runs) })
	section(*overheads, func() { bench.ReportOverheads(os.Stdout, runs) })
	section(*websites, func() {
		wr, err := bench.MeasureWebsites(bench.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportWebsites(os.Stdout, wr)
	})
	section(*snapshotF, func() {
		runs, err := bench.MeasureSnapshotComparison(bench.Options{Reps: *reps})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportSnapshot(os.Stdout, runs)
	})
	section(*faults, func() {
		trials, err := bench.FaultSweep(*faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportFaults(os.Stdout, trials)
		for _, trial := range trials {
			if !trial.OK() {
				os.Exit(1)
			}
		}
	})
	section(*netFaults, func() {
		trials, err := bench.NetFaultSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportNetFaults(os.Stdout, trials)
		for _, trial := range trials {
			if !trial.OK() {
				os.Exit(1)
			}
		}
	})
	section(*ablation, func() {
		if err := bench.ReportAblations(os.Stdout, bench.Options{Reps: *reps}); err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
	})
	// The opstats section is opt-in only: it is engineering evidence for
	// the superinstruction selection, not part of the paper's evaluation.
	if *opstatsF {
		os_, err := bench.MeasureOpStats(bench.Options{Workloads: *workloadsF})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportOpStats(os.Stdout, os_)
		fmt.Println()
	}
	// The trace section is opt-in only (never part of `all`): its totals
	// restate the Table 1/4 aggregates at per-event granularity.
	if *traceF {
		runs, err := bench.MeasureTraces()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportTraces(os.Stdout, runs)
		fmt.Println()
	}
	// Throughput mode is opt-in only (never part of `all`): it needs an
	// explicit worker count to be meaningful.
	if *parallel > 0 {
		bench.ReportThroughput(os.Stdout, measureThroughput())
		fmt.Println()
	}
	// Load mode is opt-in only: an open-loop run takes Sessions/Rate
	// seconds of wall time by construction.
	if *loadF {
		lr, err := bench.MeasureLoad(loadConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ricbench:", err)
			os.Exit(1)
		}
		bench.ReportLoad(os.Stdout, lr)
		fmt.Println()
		if lr.Failures > 0 || lr.OutputMismatches > 0 {
			os.Exit(1)
		}
	}
}
