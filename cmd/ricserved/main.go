// Command ricserved runs the distributed record service: the HTTP server
// a fleet of ricjs engines uses to share extracted `.ric` records (fetch,
// publish, invalidate) with versioned ETags and cluster-level
// single-flight extraction claims.
//
// Usage:
//
//	ricserved                 # serve on 127.0.0.1:9464
//	ricserved -addr :9464     # serve on all interfaces
//
// The store is in-memory: ricserved is a shared cache tier, not a system
// of record — every client keeps its local RecordStore and can always
// regenerate records by extraction, so restarting ricserved costs the
// fleet one warm-up, never correctness. Endpoints are documented on
// recordserv.Server.ServeHTTP; /v1/health and /v1/stats serve probes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ricjs/internal/recordserv"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:9464", "listen address")
	)
	flag.Parse()

	srv := recordserv.NewServer()
	hs := &http.Server{
		Handler: srv,
		// Slow-client protection: a peer that stalls mid-request cannot
		// pin a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ricserved:", err)
		os.Exit(1)
	}
	fmt.Printf("ricserved: serving records on %s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("ricserved: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ricserved: shutdown:", err)
			os.Exit(1)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ricserved:", err)
			os.Exit(1)
		}
	}
	st := srv.Stats()
	fmt.Printf("ricserved: served %d fetches (%d hits, %d revalidated), %d publishes, %d claims\n",
		st.Fetches, st.FetchHits, st.NotModified, st.Publishes, st.ClaimsWon)
}
