// Command riclint verifies .ric record files offline — without executing
// any JavaScript. Each record is checked in four layers:
//
//  1. integrity: the wire format, version, and checksum (Decode);
//  2. site existence: every site reference must resolve to a live access
//     site in the compiled scripts (Record.Validate);
//  3. semantic cross-check: the HC validation table, triggering-site
//     table, and handler offsets must be consistent with a static shape
//     analysis of the scripts (Record.VerifyStatic) — catching
//     checksum-valid records that lie (remapped ids, skewed offsets);
//  4. typed-shape soundness: every slot-type claim in the record must be
//     at or above what the value-type lattice infers for that slot from
//     bytecode (Record.VerifyTyped) — catching forged claims that would
//     let a Reuse session serve unboxed reads of differently-typed slots.
//
// Scripts are supplied with repeated -js flags mapping the script name a
// record uses to a source file. Records referencing scripts that were not
// supplied are checked against the layers that do not need source (a
// merged record legitimately spans scripts a session never loads).
//
// Usage:
//
//	riclint -js lib.js=testdata/point.js testdata/point.ric [more.ric ...]
//
// All inputs are processed; the exit status is 1 if any record was
// rejected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/parser"
	"ricjs/internal/ric"
)

// jsFlags collects repeated -js name=path mappings.
type jsFlags []string

func (f *jsFlags) String() string { return strings.Join(*f, ",") }

func (f *jsFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

func main() {
	var scripts jsFlags
	flag.Var(&scripts, "js", "script mapping name=path (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: riclint [-js name=path ...] record.ric [more.ric ...]")
		os.Exit(2)
	}

	var progs []*bytecode.Program
	for _, m := range scripts {
		eq := strings.Index(m, "=")
		name, path := m[:eq], m[eq+1:]
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riclint:", err)
			os.Exit(2)
		}
		ast, err := parser.Parse(name, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "riclint:", err)
			os.Exit(2)
		}
		prog, err := bytecode.Compile(ast)
		if err != nil {
			fmt.Fprintln(os.Stderr, "riclint:", err)
			os.Exit(2)
		}
		progs = append(progs, prog)
	}
	res := analysis.Analyze(progs...)
	if res.GlobalTop() {
		fmt.Fprintln(os.Stderr, "riclint: warning: analysis widened to ⊤; semantic checks are vacuous")
	}

	failed := 0
	for _, path := range flag.Args() {
		if err := lint(path, progs, res); err != nil {
			fmt.Fprintf(os.Stderr, "riclint: %s: REJECTED: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("riclint: %s: ok\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func lint(path string, progs []*bytecode.Program, res *analysis.Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rec, err := ric.Decode(data)
	if err != nil {
		return err
	}
	if err := rec.Validate(progs...); err != nil {
		return err
	}
	if err := rec.VerifyStatic(res); err != nil {
		return err
	}
	return rec.VerifyTyped(res)
}
