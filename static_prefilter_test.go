package ricjs_test

import (
	"testing"

	"ricjs"
)

// prefilterSrc carries a never-called function so the static analysis has
// a dead site to flag through Stats().
const prefilterSrc = `
	function Pt(x, y) { this.x = x; this.y = y; }
	function neverCalled(o) { return o.zzz; }
	var a = [];
	for (var i = 0; i < 6; i++) a.push(new Pt(i, i));
	var s = 0;
	for (var j = 0; j < a.length; j++) s += a[j].x;
	print('s', s);
`

// TestEngineStaticPrefilter checks the facade wiring of the analysis→reuse
// feed: with Options.StaticPrefilter the reuse run behaves identically
// (same output, same preloads and averted misses — a fresh record has
// nothing to filter) while Stats() additionally reports the static
// verdict; without it all static counters stay zero.
func TestEngineStaticPrefilter(t *testing.T) {
	cache := ricjs.NewCodeCache()
	initial := ricjs.NewEngine(ricjs.Options{Cache: cache, AddressSeed: 11})
	if err := initial.Run("lib.js", prefilterSrc); err != nil {
		t.Fatal(err)
	}
	rec := initial.ExtractRecord("lib.js")

	plain := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: rec, AddressSeed: 12})
	if err := plain.Run("lib.js", prefilterSrc); err != nil {
		t.Fatal(err)
	}
	pre := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: rec, AddressSeed: 13, StaticPrefilter: true})
	if err := pre.Run("lib.js", prefilterSrc); err != nil {
		t.Fatal(err)
	}
	if d, cause := pre.Degraded(); d {
		t.Fatalf("prefiltered engine degraded: %v", cause)
	}

	if plain.Output() != pre.Output() {
		t.Fatalf("prefilter changed program output:\n%q\nvs\n%q", plain.Output(), pre.Output())
	}
	ps, ss := plain.Stats(), pre.Stats()
	if ss.Preloads != ps.Preloads || ss.MissesSaved != ps.MissesSaved {
		t.Errorf("prefilter changed reuse effectiveness: preloads %d vs %d, misses saved %d vs %d",
			ss.Preloads, ps.Preloads, ss.MissesSaved, ps.MissesSaved)
	}
	if ss.StaticFilteredPreloads != 0 {
		t.Errorf("fresh record: %d preloads filtered, want 0", ss.StaticFilteredPreloads)
	}
	if ss.StaticDeadSites == 0 {
		t.Error("neverCalled's field load should surface as a dead site in Stats()")
	}
	if ps.StaticDeadSites != 0 || ps.StaticFilteredPreloads != 0 || ps.StaticMegamorphicRisk != 0 {
		t.Error("engine without StaticPrefilter must report zero static counters")
	}
}
