// Package ricjs is a JavaScript engine with Reusable Inline Caching (RIC),
// a from-scratch Go reproduction of Choi, Shull and Torrellas, "Reusable
// Inline Caching for JavaScript Performance" (PLDI 2019).
//
// The engine executes a JavaScript subset through a bytecode interpreter
// with V8-style hidden classes and out-of-line inline caches. RIC extracts
// the context-independent portion of the IC state after an Initial run
// into a persistent Record, and uses it in later Reuse runs to avert IC
// misses, cutting startup time.
//
// Typical use:
//
//	cache := ricjs.NewCodeCache()
//
//	// Initial run: build IC state, then extract the record.
//	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
//	initial.Run("lib.js", src)
//	record := initial.ExtractRecord("lib.js")
//
//	// Reuse run: the record preloads ICVector slots as hidden classes
//	// validate, averting misses.
//	reuse := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: record})
//	reuse.Run("lib.js", src)
//	fmt.Println(reuse.Stats().MissRate())
package ricjs

import (
	"bytes"
	"fmt"
	"io"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/codecache"
	"ricjs/internal/profiler"
	"ricjs/internal/ric"
	"ricjs/internal/source"
	"ricjs/internal/trace"
	"ricjs/internal/vm"
)

// Stats is the statistics snapshot of one engine run: abstract instruction
// counts by category, IC hits and misses with the Table 4 miss breakdown,
// hidden-class and handler counts, and RIC validation/preload activity.
type Stats = profiler.Snapshot

// CodeCache shares compiled bytecode across engines, modelling V8's code
// cache: Reuse runs skip parsing and compilation (paper §6, §8.1).
type CodeCache struct {
	c *codecache.Cache
}

// NewCodeCache creates an empty code cache. It is safe to share across
// engines and goroutines.
func NewCodeCache() *CodeCache {
	return &CodeCache{c: codecache.New()}
}

// Record is the persistent ICRecord extracted from an Initial run: the
// Hidden Class Validation Table, the Triggering Object Access Site Table,
// and the saved context-independent handlers (paper §5.1).
type Record struct {
	r *ric.Record
}

// Encode serializes the record. The returned length is the record's
// memory overhead, the quantity §7.3 reports.
func (r *Record) Encode() []byte { return r.r.Encode() }

// Stats returns the extraction statistics.
func (r *Record) Stats() ric.Stats { return r.r.Stats }

// Label returns the workload label the record was extracted under.
func (r *Record) Label() string { return r.r.Script }

// DecodeRecord parses a serialized record, rejecting corrupt input.
func DecodeRecord(data []byte) (*Record, error) {
	rec, err := ric.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Record{r: rec}, nil
}

// EngineError is the typed error Engine.Run produces when a run is
// interrupted by something other than ordinary script behaviour: an
// internal invariant violation (a panic inside the interpreter) or a
// failure in the record pipeline (decode, validation, preload).
//
// When RecordAttributable is true the failure was caused by the reuse
// record, and the engine degrades: it discards the record and retries the
// run conventionally. Run then only returns the error if the conventional
// retry itself failed; a successful retry reports the degradation through
// Stats().DegradedRuns and Degraded() instead.
type EngineError struct {
	// Script names the script whose run failed.
	Script string
	// Phase is where the failure happened: "decode", "validate",
	// "preload", or "execute".
	Phase string
	// RecordAttributable reports whether the reuse record caused the
	// failure (and a conventional retry is therefore meaningful).
	RecordAttributable bool
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *EngineError) Error() string {
	return fmt.Sprintf("ricjs: %s %s: %v", e.Phase, e.Script, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *EngineError) Unwrap() error { return e.Err }

// Options configures an engine.
type Options struct {
	// Cache supplies compiled bytecode; nil creates a private cache.
	Cache *CodeCache
	// Record enables RIC reuse: hidden classes validate against it and
	// dependent sites preload from it. Nil runs conventionally.
	Record *Record
	// RecordBytes supplies an encoded record instead of a decoded one;
	// the engine decodes (and checksum-verifies) it itself. Bytes that
	// fail to decode do not fail construction: the engine starts
	// conventionally, counts the degradation in Stats().DegradedRuns, and
	// reports the cause via Degraded. Ignored when Record is set.
	RecordBytes []byte
	// IncludeGlobals extends RIC to the global object (off by default,
	// paper §6; used by the ablation benches). It affects ExtractRecord.
	IncludeGlobals bool
	// AddressSeed pins the simulated heap base address for reproducible
	// tests; 0 draws a fresh process-unique base (the realistic default:
	// every run sees different addresses).
	AddressSeed uint64
	// Stdout receives print/console.log output; nil collects it
	// internally, readable via Output.
	Stdout io.Writer
	// MaxSteps aborts any Run after this many bytecode operations
	// (0 = unlimited). The abort is not catchable by script code, so a
	// runaway script cannot swallow its own termination.
	MaxSteps uint64
	// RandSeed seeds Math.random. The default (0) uses a fixed seed, so
	// runs are reproducible; pass distinct seeds to model real-world
	// nondeterminism across sessions (e.g. the §9 snapshot hazard).
	RandSeed uint64
	// StaticPrefilter runs the static shape analysis over every script the
	// engine loads and feeds the result to the reuser: preloads for sites
	// the analysis proves dead, stale, or unable to observe the validated
	// class are skipped, and Stats() reports the dead/megamorphic-risk
	// site counts. No effect in conventional (record-free) runs.
	StaticPrefilter bool
	// Trace receives structured IC events (hits, misses, handler installs,
	// validations, preloads, degradations) when non-nil; see NewTrace. A nil
	// Trace disables tracing at near-zero cost. The buffer's event stream
	// covers exactly the profiler's lifetime: engine-startup events are
	// excluded, and a degradation resets the buffer alongside the fresh
	// profiler so the two stay reconcilable.
	Trace *trace.Buffer
	// Quicken enables bytecode quickening: monomorphic IC sites rewrite
	// their instruction word, in the VM's private executable copy of the
	// code, to a fast form carrying the cached field offset inline. A
	// runtime-only overlay — compiled bytecode, records, analysis, and
	// traces all see canonical opcodes, and abstract instruction counts are
	// identical with it on or off.
	Quicken bool
	// Fuse enables superinstruction fusion: the hottest adjacent opcode
	// pairs (measured by ricbench -opstats) dispatch as one fused opcode in
	// the VM's private code copy. Accounting-neutral like Quicken.
	Fuse bool
	// CollectOpStats makes the VM count executed opcodes and adjacent
	// opcode pairs (the ricbench -opstats histogram). Deterministic for a
	// deterministic program; costs one array update per dispatch.
	CollectOpStats bool
}

// NewTrace allocates a trace buffer to pass as Options.Trace. capacity
// bounds the retained event ring (<= 0 picks a default); aggregate per-site
// counts are kept for every event regardless of ring capacity.
func NewTrace(capacity int) *trace.Buffer { return trace.NewBuffer(capacity) }

// The trace subsystem lives in internal/trace; these aliases and wrappers
// make its consumer surface — buffers, events, summaries, and the two
// exporters — reachable from outside the module, where internal packages
// cannot be imported.
type (
	// TraceBuffer is one session's event stream; see NewTrace.
	TraceBuffer = trace.Buffer
	// TraceEvent is one structured IC event.
	TraceEvent = trace.Event
	// TraceEventType identifies one kind of IC event; its String form is
	// the stable wire name used by the exporters and golden files.
	TraceEventType = trace.Type
	// TraceSummary is a deterministic roll-up of an event stream; equal
	// executions produce equal summaries.
	TraceSummary = trace.Summary
)

// The event types, re-exported so external code can filter events and
// query summaries by type. See the internal/trace documentation for what
// each one means.
const (
	EvICHit            = trace.EvICHit
	EvICHitPreloaded   = trace.EvICHitPreloaded
	EvICMissHandler    = trace.EvICMissHandler
	EvICMissGlobal     = trace.EvICMissGlobal
	EvICMissOther      = trace.EvICMissOther
	EvMegamorphic      = trace.EvMegamorphic
	EvHandlerInstall   = trace.EvHandlerInstall
	EvHandlerInstallCI = trace.EvHandlerInstallCI
	EvHCCreated        = trace.EvHCCreated
	EvValidatePass     = trace.EvValidatePass
	EvValidateFail     = trace.EvValidateFail
	EvPreloadApplied   = trace.EvPreloadApplied
	EvPreloadRejected  = trace.EvPreloadRejected
	EvPreloadFiltered  = trace.EvPreloadFiltered
	EvQuicken          = trace.EvQuicken
	EvDequicken        = trace.EvDequicken
	EvDegrade          = trace.EvDegrade
	EvPoolSession      = trace.EvPoolSession
	EvPoolAcquireHit   = trace.EvPoolAcquireHit
	EvPoolAcquireOwn   = trace.EvPoolAcquireOwn
	EvPoolDedup        = trace.EvPoolDedup
	EvPoolWait         = trace.EvPoolWait
	EvPoolConventional = trace.EvPoolConventional
	EvPoolExtract      = trace.EvPoolExtract
	EvPoolPublish      = trace.EvPoolPublish
	EvPoolAbandon      = trace.EvPoolAbandon
	EvPoolStoreLoad    = trace.EvPoolStoreLoad
	EvPoolStoreError   = trace.EvPoolStoreError
	EvPoolDegraded     = trace.EvPoolDegraded
	// NumTraceEventTypes bounds iteration over all event types.
	NumTraceEventTypes = trace.NumTypes
)

// MergeTraceSummaries folds many per-session summaries into one (e.g. the
// pool-wide view across SessionResult.Trace buffers).
func MergeTraceSummaries(parts ...*trace.Summary) *trace.Summary {
	return trace.MergeSummaries(parts...)
}

// WriteTraceJSONL writes events one JSON object per line.
func WriteTraceJSONL(w io.Writer, events []trace.Event) error {
	return trace.WriteJSONL(w, events)
}

// WriteChromeTrace writes events in the Chrome trace_event JSON format,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, events []trace.Event) error {
	return trace.WriteChromeTrace(w, events)
}

// scriptRun remembers one executed script so a degraded engine can replay
// the session on a fresh conventional VM.
type scriptRun struct{ name, src string }

// Engine is one execution context — one "run" in the paper's terminology.
// Create a fresh Engine per run; heap state, IC state, and statistics are
// per-engine. An Engine is not safe for concurrent use.
//
// A reuse-mode engine never lets its record take the run down: decode,
// validation, and preload failures (including interpreter panics caused by
// a corrupt record) degrade the engine to a conventional execution that
// replays the session record-free. Degradation happens at most once; after
// it the engine is permanently conventional.
type Engine struct {
	vm     *vm.VM
	cache  *CodeCache
	reuser *ric.Reuser
	rec    *Record
	opts   Options

	// progs accumulates compiled programs for the static prefilter; the
	// analysis is re-run jointly whenever a new script joins the session.
	progs []*bytecode.Program

	// lastAnalysis is the joint analysis ExtractRecord computed for the
	// typed-shape claims, kept for StaticTypeStats reporting.
	lastAnalysis *analysis.Result

	// history lists every script executed so far (including ones that
	// ended in a JavaScript error — their side effects persist), so
	// degrade can reproduce the session state on a fresh VM.
	history     []scriptRun
	degraded    bool
	degradedErr *EngineError

	// staged buffers print output while an external Stdout is configured
	// and degradation is still possible, so a degraded retry can replay
	// without duplicating output the user already saw. Flushed to the real
	// Stdout after each script settles.
	staged *bytes.Buffer
	// router is the stable writer handed to every VM the engine builds; it
	// forwards to staged while degradation is still possible and to the
	// external Stdout once it no longer is, so a degraded engine stops
	// paying the staging detour.
	router *outputRouter
}

// outputRouter is an io.Writer indirection that lets the engine repoint a
// VM's output mid-life (a VM's writer is fixed at construction).
type outputRouter struct{ w io.Writer }

func (o *outputRouter) Write(p []byte) (int, error) { return o.w.Write(p) }

// NewEngine creates an engine. If opts.Record (or opts.RecordBytes) is
// set, the engine runs in Reuse mode: builtin hidden classes validate
// immediately and triggering sites preload their dependents as execution
// proceeds.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts, cache: opts.Cache}
	if e.cache == nil {
		e.cache = NewCodeCache()
	}
	e.rec = opts.Record
	var decodeErr error
	if e.rec == nil && len(opts.RecordBytes) > 0 {
		r, err := ric.Decode(opts.RecordBytes)
		if err != nil {
			decodeErr = err
		} else {
			e.rec = &Record{r: r}
		}
	}
	var hooks vm.Hooks
	if e.rec != nil {
		e.reuser = ric.NewReuser(e.rec.r, nil, nil)
		hooks = e.reuser
	}
	e.vm = vm.New(vm.Options{
		AddressSeed:    opts.AddressSeed,
		Hooks:          hooks,
		Stdout:         e.runWriter(),
		MaxSteps:       opts.MaxSteps,
		RandSeed:       opts.RandSeed,
		Trace:          opts.Trace,
		Quicken:        opts.Quicken,
		Fuse:           opts.Fuse,
		CollectOpStats: opts.CollectOpStats,
	})
	if e.reuser != nil {
		// The VM announced builtin hidden classes during construction;
		// the Reuser validated them with no profiler and no loaded
		// scripts. Attach completes the wiring; preloads into each
		// script's ICVector replay when the script is loaded.
		e.reuser.Attach(e.vm)
	}
	if decodeErr != nil {
		e.degraded = true
		e.degradedErr = &EngineError{
			Phase:              "decode",
			RecordAttributable: true,
			Err:                decodeErr,
		}
		e.vm.Prof.Degrade()
		opts.Trace.Emit(trace.EvDegrade, source.Site{}, "decode", 0)
	}
	return e
}

// runWriter returns the writer the VM should print to. While the engine
// can still degrade (reuse mode with an external Stdout), output is staged
// so a conventional retry never duplicates delivered bytes; otherwise the
// external writer (or the VM's internal buffer, when nil) is used directly.
func (e *Engine) runWriter() io.Writer {
	if e.opts.Stdout == nil {
		return nil
	}
	if e.router == nil {
		e.router = &outputRouter{}
	}
	if e.rec == nil {
		e.router.w = e.opts.Stdout
	} else {
		if e.staged == nil {
			e.staged = &bytes.Buffer{}
		}
		e.router.w = e.staged
	}
	return e.router
}

// Run loads (or fetches from the code cache) and executes a script.
//
// In reuse mode the record is validated against the script's compiled
// bytecode first, and the execution runs inside a recovery boundary; any
// record-attributable failure degrades the engine (see Engine) and the
// script is retried conventionally. Ordinary JavaScript errors are
// returned as-is — they are program behaviour, identical with or without
// the record.
func (e *Engine) Run(name, src string) error {
	prog, err := e.cache.c.Load(name, src)
	if err != nil {
		return fmt.Errorf("ricjs: load %s: %w", name, err)
	}
	if e.reuser != nil {
		if verr := e.rec.r.Validate(prog); verr != nil {
			e.degrade(&EngineError{
				Script:             name,
				Phase:              "validate",
				RecordAttributable: true,
				Err:                verr,
			})
		}
	}
	if e.reuser != nil && e.opts.StaticPrefilter {
		seen := false
		for _, p := range e.progs {
			if p == prog {
				seen = true
				break
			}
		}
		if !seen {
			e.progs = append(e.progs, prog)
			// Analyze the whole session jointly: scripts share the global
			// object and each other's constructors, so per-script analysis
			// would widen cross-script receivers to ⊤.
			e.reuser.SetAnalysis(analysis.Analyze(e.progs...))
		}
	}
	err = e.runScript(name, prog)
	if ee, ok := err.(*EngineError); ok && ee.RecordAttributable && !e.degraded {
		e.degrade(ee)
		err = e.runScript(name, prog)
	}
	// The script has settled (successfully or with a JavaScript error):
	// its side effects persist, so it must be part of any future replay,
	// and its staged output is final.
	e.history = append(e.history, scriptRun{name: name, src: src})
	e.flushStaged()
	if err != nil {
		return err
	}
	return nil
}

// runScript executes one registered script under the recovery boundary.
// Interpreter panics become *EngineError; while a reuser is attached they
// are attributed to the record (a semantically-verified conventional run
// cannot be poisoned by one).
func (e *Engine) runScript(name string, prog *bytecode.Program) (err error) {
	phase := "execute"
	defer func() {
		if r := recover(); r != nil {
			err = &EngineError{
				Script:             name,
				Phase:              phase,
				RecordAttributable: e.reuser != nil,
				Err:                fmt.Errorf("internal invariant violated: %v", r),
			}
		}
	}()
	e.vm.RegisterProgram(prog)
	if e.reuser != nil {
		// Hidden classes validated before this script was registered
		// (builtins at startup, classes created by earlier scripts) may
		// have dependent sites in this script.
		phase = "preload"
		e.reuser.ReplayPreloads()
		phase = "execute"
	}
	if _, rerr := e.vm.RunProgram(prog); rerr != nil {
		return fmt.Errorf("ricjs: run %s: %w", name, rerr)
	}
	return nil
}

// degrade abandons reuse permanently: the record and reuser are dropped, a
// fresh conventional VM is built, and the session's script history is
// replayed on it so heap and global state catch up. Output replayed for
// already-delivered scripts is discarded; the caller re-runs the current
// script afterwards.
func (e *Engine) degrade(cause *EngineError) {
	e.degraded = true
	e.degradedErr = cause
	e.reuser = nil
	// Degradation happens at most once: with the record gone, no future
	// run can degrade again, so output no longer needs staging. The record
	// is cleared before rebuilding the VM so runWriter routes replay output
	// through the staged buffer one last time (discarded below) and
	// everything after that straight to the external Stdout.
	e.rec = nil
	var replayWriter io.Writer
	if e.opts.Stdout != nil {
		if e.router == nil {
			e.router = &outputRouter{}
		}
		if e.staged == nil {
			e.staged = &bytes.Buffer{}
		}
		e.router.w = e.staged
		replayWriter = e.router
	}
	// The fresh VM starts with a fresh profiler; reset the trace buffer
	// alongside it so the event stream keeps covering exactly the profiler
	// lifetime (the replay below re-emits the session's events).
	e.opts.Trace.Reset()
	e.vm = vm.New(vm.Options{
		AddressSeed:    e.opts.AddressSeed,
		Stdout:         replayWriter,
		MaxSteps:       e.opts.MaxSteps,
		RandSeed:       e.opts.RandSeed,
		Trace:          e.opts.Trace,
		Quicken:        e.opts.Quicken,
		Fuse:           e.opts.Fuse,
		CollectOpStats: e.opts.CollectOpStats,
	})
	e.vm.Prof.Degrade()
	e.opts.Trace.Emit(trace.EvDegrade, source.Site{}, cause.Phase, 0)
	for _, h := range e.history {
		prog, err := e.cache.c.Load(h.name, h.src)
		if err != nil {
			continue
		}
		// Replay errors are the same JavaScript errors the original run
		// produced (execution is deterministic); state up to the error is
		// what persists, exactly as before.
		e.vm.RunProgram(prog) //nolint:errcheck
	}
	if e.staged != nil {
		// Replayed output was already delivered to the external Stdout in
		// the original runs.
		e.staged.Reset()
	}
	if e.router != nil {
		// Post-degradation output goes straight to the external writer.
		e.router.w = e.opts.Stdout
	}
}

// flushStaged delivers staged output to the external Stdout writer.
func (e *Engine) flushStaged() {
	if e.staged == nil || e.opts.Stdout == nil {
		return
	}
	if e.staged.Len() > 0 {
		e.opts.Stdout.Write(e.staged.Bytes()) //nolint:errcheck
		e.staged.Reset()
	}
}

// Degraded reports whether the engine abandoned reuse for a conventional
// execution, and why (nil cause when it never degraded).
func (e *Engine) Degraded() (bool, *EngineError) {
	return e.degraded, e.degradedErr
}

// ExtractRecord runs the extraction phase (paper §5.2.1) over the engine's
// accumulated IC state, then attaches typed-shape claims computed by the
// static value-type analysis of the session's scripts (the .ric v5
// section): a Reuse run applies them to validated hidden classes,
// upgrading monomorphic load sites to the typed fast path. Call it after
// the Initial run completes; the engine is not modified.
func (e *Engine) ExtractRecord(label string) *Record {
	rec := ric.Extract(e.vm, label, ric.Config{IncludeGlobals: e.opts.IncludeGlobals})
	// Analyze the session jointly, exactly as the static prefilter does:
	// scripts share the global object and each other's constructors.
	var progs []*bytecode.Program
	seen := make(map[*bytecode.Program]bool)
	for _, h := range e.history {
		prog, err := e.cache.c.Load(h.name, h.src)
		if err != nil || seen[prog] {
			continue
		}
		seen[prog] = true
		progs = append(progs, prog)
	}
	if len(progs) > 0 {
		res := analysis.Analyze(progs...)
		rec.AttachTypedShapes(res)
		e.lastAnalysis = res
	}
	return &Record{r: rec}
}

// StaticTypeStats reports the extraction-time static-typing summary: how
// many access sites the value-type analysis predicted over, and how many
// shapes and slots received type claims (the record's typed-shape
// section). All zeros before ExtractRecord runs.
func (e *Engine) StaticTypeStats() (sitesAnalyzed, typedShapes, typedSlots int) {
	if e.lastAnalysis == nil {
		return 0, 0, 0
	}
	typedShapes, typedSlots = e.lastAnalysis.TypedStats()
	return len(e.lastAnalysis.Sites()), typedShapes, typedSlots
}

// Stats snapshots the run's statistics.
func (e *Engine) Stats() Stats { return e.vm.Prof.Snapshot() }

// Trace returns the trace buffer configured at construction (nil when
// tracing is disabled).
func (e *Engine) Trace() *trace.Buffer { return e.opts.Trace }

// Output returns accumulated print/console output when no Stdout writer
// was configured.
func (e *Engine) Output() string { return e.vm.Output() }

// ValidatedHCs reports how many hidden classes RIC validated in this run
// (0 in conventional mode).
func (e *Engine) ValidatedHCs() int {
	if e.reuser == nil {
		return 0
	}
	return e.reuser.ValidatedCount()
}

// ICState renders the engine's inline-cache state: every populated
// ICVector slot with its site, feedback state (monomorphic, polymorphic,
// megamorphic) and cached (hidden class, handler) entries. Intended for
// debugging and for studying what RIC preloaded.
func (e *Engine) ICState() string { return e.vm.DumpICState() }

// VM exposes the underlying virtual machine for advanced inspection
// (extraction internals, tests, tooling).
func (e *Engine) VM() *vm.VM { return e.vm }

// OpStats returns the executed-opcode histogram collected under
// Options.CollectOpStats, or nil when collection is disabled.
func (e *Engine) OpStats() *vm.OpStats { return e.vm.OpStats() }
