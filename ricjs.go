// Package ricjs is a JavaScript engine with Reusable Inline Caching (RIC),
// a from-scratch Go reproduction of Choi, Shull and Torrellas, "Reusable
// Inline Caching for JavaScript Performance" (PLDI 2019).
//
// The engine executes a JavaScript subset through a bytecode interpreter
// with V8-style hidden classes and out-of-line inline caches. RIC extracts
// the context-independent portion of the IC state after an Initial run
// into a persistent Record, and uses it in later Reuse runs to avert IC
// misses, cutting startup time.
//
// Typical use:
//
//	cache := ricjs.NewCodeCache()
//
//	// Initial run: build IC state, then extract the record.
//	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
//	initial.Run("lib.js", src)
//	record := initial.ExtractRecord("lib.js")
//
//	// Reuse run: the record preloads ICVector slots as hidden classes
//	// validate, averting misses.
//	reuse := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: record})
//	reuse.Run("lib.js", src)
//	fmt.Println(reuse.Stats().MissRate())
package ricjs

import (
	"fmt"
	"io"

	"ricjs/internal/codecache"
	"ricjs/internal/profiler"
	"ricjs/internal/ric"
	"ricjs/internal/vm"
)

// Stats is the statistics snapshot of one engine run: abstract instruction
// counts by category, IC hits and misses with the Table 4 miss breakdown,
// hidden-class and handler counts, and RIC validation/preload activity.
type Stats = profiler.Snapshot

// CodeCache shares compiled bytecode across engines, modelling V8's code
// cache: Reuse runs skip parsing and compilation (paper §6, §8.1).
type CodeCache struct {
	c *codecache.Cache
}

// NewCodeCache creates an empty code cache. It is safe to share across
// engines and goroutines.
func NewCodeCache() *CodeCache {
	return &CodeCache{c: codecache.New()}
}

// Record is the persistent ICRecord extracted from an Initial run: the
// Hidden Class Validation Table, the Triggering Object Access Site Table,
// and the saved context-independent handlers (paper §5.1).
type Record struct {
	r *ric.Record
}

// Encode serializes the record. The returned length is the record's
// memory overhead, the quantity §7.3 reports.
func (r *Record) Encode() []byte { return r.r.Encode() }

// Stats returns the extraction statistics.
func (r *Record) Stats() ric.Stats { return r.r.Stats }

// Label returns the workload label the record was extracted under.
func (r *Record) Label() string { return r.r.Script }

// DecodeRecord parses a serialized record, rejecting corrupt input.
func DecodeRecord(data []byte) (*Record, error) {
	rec, err := ric.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Record{r: rec}, nil
}

// Options configures an engine.
type Options struct {
	// Cache supplies compiled bytecode; nil creates a private cache.
	Cache *CodeCache
	// Record enables RIC reuse: hidden classes validate against it and
	// dependent sites preload from it. Nil runs conventionally.
	Record *Record
	// IncludeGlobals extends RIC to the global object (off by default,
	// paper §6; used by the ablation benches). It affects ExtractRecord.
	IncludeGlobals bool
	// AddressSeed pins the simulated heap base address for reproducible
	// tests; 0 draws a fresh process-unique base (the realistic default:
	// every run sees different addresses).
	AddressSeed uint64
	// Stdout receives print/console.log output; nil collects it
	// internally, readable via Output.
	Stdout io.Writer
	// MaxSteps aborts any Run after this many bytecode operations
	// (0 = unlimited). The abort is not catchable by script code, so a
	// runaway script cannot swallow its own termination.
	MaxSteps uint64
	// RandSeed seeds Math.random. The default (0) uses a fixed seed, so
	// runs are reproducible; pass distinct seeds to model real-world
	// nondeterminism across sessions (e.g. the §9 snapshot hazard).
	RandSeed uint64
}

// Engine is one execution context — one "run" in the paper's terminology.
// Create a fresh Engine per run; heap state, IC state, and statistics are
// per-engine. An Engine is not safe for concurrent use.
type Engine struct {
	vm     *vm.VM
	cache  *CodeCache
	reuser *ric.Reuser
	opts   Options
}

// NewEngine creates an engine. If opts.Record is set, the engine runs in
// Reuse mode: builtin hidden classes validate immediately and triggering
// sites preload their dependents as execution proceeds.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts, cache: opts.Cache}
	if e.cache == nil {
		e.cache = NewCodeCache()
	}
	var hooks vm.Hooks
	if opts.Record != nil {
		e.reuser = ric.NewReuser(opts.Record.r, nil, nil)
		hooks = e.reuser
	}
	e.vm = vm.New(vm.Options{
		AddressSeed: opts.AddressSeed,
		Hooks:       hooks,
		Stdout:      opts.Stdout,
		MaxSteps:    opts.MaxSteps,
		RandSeed:    opts.RandSeed,
	})
	if e.reuser != nil {
		// The VM announced builtin hidden classes during construction;
		// the Reuser validated them with no profiler and no loaded
		// scripts. Attach completes the wiring; preloads into each
		// script's ICVector replay when the script is loaded.
		e.reuser.Attach(e.vm)
	}
	return e
}

// Run loads (or fetches from the code cache) and executes a script.
func (e *Engine) Run(name, src string) error {
	prog, err := e.cache.c.Load(name, src)
	if err != nil {
		return fmt.Errorf("ricjs: load %s: %w", name, err)
	}
	e.vm.RegisterProgram(prog)
	if e.reuser != nil {
		// Hidden classes validated before this script was registered
		// (builtins at startup, classes created by earlier scripts) may
		// have dependent sites in this script.
		e.reuser.ReplayPreloads()
	}
	if _, err := e.vm.RunProgram(prog); err != nil {
		return fmt.Errorf("ricjs: run %s: %w", name, err)
	}
	return nil
}

// ExtractRecord runs the extraction phase (paper §5.2.1) over the engine's
// accumulated IC state. Call it after the Initial run completes; the
// engine is not modified.
func (e *Engine) ExtractRecord(label string) *Record {
	rec := ric.Extract(e.vm, label, ric.Config{IncludeGlobals: e.opts.IncludeGlobals})
	return &Record{r: rec}
}

// Stats snapshots the run's statistics.
func (e *Engine) Stats() Stats { return e.vm.Prof.Snapshot() }

// Output returns accumulated print/console output when no Stdout writer
// was configured.
func (e *Engine) Output() string { return e.vm.Output() }

// ValidatedHCs reports how many hidden classes RIC validated in this run
// (0 in conventional mode).
func (e *Engine) ValidatedHCs() int {
	if e.reuser == nil {
		return 0
	}
	return e.reuser.ValidatedCount()
}

// ICState renders the engine's inline-cache state: every populated
// ICVector slot with its site, feedback state (monomorphic, polymorphic,
// megamorphic) and cached (hidden class, handler) entries. Intended for
// debugging and for studying what RIC preloaded.
func (e *Engine) ICState() string { return e.vm.DumpICState() }

// VM exposes the underlying virtual machine for advanced inspection
// (extraction internals, tests, tooling).
func (e *Engine) VM() *vm.VM { return e.vm }
