package ricjs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"

	"ricjs/internal/profiler"
	"ricjs/internal/source"
	"ricjs/internal/trace"
)

// PoolStats is the aggregate statistics snapshot of a SessionPool:
// sessions served, shared-cache hits, extractions and their single-flight
// dedup, store traffic, and degradations.
type PoolStats = profiler.PoolSnapshot

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// Cache supplies compiled bytecode to every session; nil creates a
	// pool-private cache. The code cache is already concurrency-safe and
	// is shared as-is.
	Cache *CodeCache
	// Store optionally backs the in-memory record cache with persistence:
	// cold keys try a store load before extracting, and freshly extracted
	// records are saved back (both best-effort — store I/O failure never
	// fails a session, it only shows up in Stats().StoreErrors).
	Store *RecordStore
	// Remote optionally layers the distributed record service above the
	// local store: cold keys try a remote fetch first, extraction is
	// coordinated fleet-wide through claims, and extracted records are
	// published for other nodes. Strictly best-effort — a dead, slow,
	// partitioned, or corrupt-serving server never fails a session, it
	// only pushes the session down the tier ladder (remote → store →
	// extract → conventional), visibly in Stats() and the trace.
	Remote *RemoteTier
	// Shards is the number of record-cache shards (default 16). More
	// shards reduce lock contention between sessions of distinct keys.
	Shards int
	// WaitForRecord makes sessions that find an extraction in flight for
	// their key block until it settles and then reuse its record. The
	// default (false) runs such sessions conventionally instead: lower
	// latency, no reuse benefit for that session. Either way extraction
	// happens exactly once per cold key.
	WaitForRecord bool
	// SnapshotWarmStart makes each extraction owner also capture a heap
	// snapshot of its finished Initial run (best-effort — unrepresentable
	// state just skips the capture), so later sessions of the same
	// workload that opt in (SessionRequest.WarmStart) can be served by
	// restoring the snapshot instead of re-executing the scripts. A
	// restored session clones the warm engine state in microseconds and
	// produces no print output (nothing executes); it is only served when
	// the request's scripts are byte-identical to the ones the snapshot
	// was captured from.
	SnapshotWarmStart bool
	// IncludeGlobals extends extraction to global-object state (paper §6).
	IncludeGlobals bool
	// MaxSteps bounds every session's scripts (0 = unlimited).
	MaxSteps uint64
	// TraceCapacity, when nonzero, gives every session a private trace
	// buffer (negative values pick the default ring capacity), tagged with
	// a pool-unique session ID and the record key's cache-shard index, and
	// returned in SessionResult.Trace. Zero disables tracing.
	TraceCapacity int
	// Quicken enables bytecode quickening in every session's VM. Compiled
	// code stays shared and immutable across sessions — each VM overlays a
	// private executable copy — so sessions never observe each other's
	// quickening and results are byte-identical with it off.
	Quicken bool
	// Fuse enables superinstruction fusion in every session's VM, under
	// the same private-copy isolation as Quicken.
	Fuse bool
}

// SessionScript is one script of a session's workload.
type SessionScript struct {
	Name string
	Src  string
}

// SessionRequest describes one session: the record key it shares with
// other sessions of the same workload, the scripts to execute, and the
// per-session knobs.
type SessionRequest struct {
	// Key identifies the workload's record in the shared cache (and the
	// backing store). Sessions with equal keys share one decoded record.
	Key string
	// Scripts is the workload, executed in order on one engine.
	Scripts []SessionScript
	// Stdout receives print output; nil collects it into Result.Output.
	Stdout io.Writer
	// WarmStart asks for snapshot-restore serving when the pool holds a
	// snapshot for this key and the scripts match what it was captured
	// from (see PoolOptions.SnapshotWarmStart). When no snapshot fits,
	// the session runs normally; the flag never changes correctness, only
	// whether initialization is cloned or re-executed.
	WarmStart bool
	// AddressSeed and RandSeed are forwarded to the engine (see Options).
	AddressSeed uint64
	RandSeed    uint64
}

// SessionMode reports how a session was served.
type SessionMode int

const (
	// SessionReuse means the session ran with a record from the shared
	// cache (or one it waited for).
	SessionReuse SessionMode = iota
	// SessionInitial means the session found its key cold, performed the
	// Initial run, and published the extracted record for everyone else.
	SessionInitial
	// SessionConventional means the session ran record-free: extraction
	// was already in flight elsewhere (and WaitForRecord was off, or the
	// awaited extraction failed).
	SessionConventional
	// SessionSnapshot means the session was served by restoring a captured
	// heap snapshot of a finished Initial run instead of executing its
	// scripts (see PoolOptions.SnapshotWarmStart). Nothing executed, so
	// the session has no print output.
	SessionSnapshot
)

// String returns the mode name.
func (m SessionMode) String() string {
	switch m {
	case SessionReuse:
		return "reuse"
	case SessionInitial:
		return "initial"
	case SessionConventional:
		return "conventional"
	case SessionSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SessionResult is the outcome of one served session.
type SessionResult struct {
	// Mode is how the session ran.
	Mode SessionMode
	// Stats is the session engine's statistics snapshot.
	Stats Stats
	// Output is the collected print output when no Stdout was configured.
	Output string
	// Degraded reports that the engine abandoned reuse mid-session and
	// completed conventionally.
	Degraded bool
	// Trace is the session's trace buffer when the pool was created with
	// TraceCapacity set (nil otherwise). Pool lifecycle events are emitted
	// into it after the session settles, so a mid-run degradation — which
	// resets the buffer alongside the engine's fresh profiler — cannot wipe
	// them. Sessions that return an error drop their buffer.
	Trace *trace.Buffer
}

// recordEntry is one key's slot in the shared record cache. ready is
// closed when the entry settles; rec is written exactly once, before the
// close, and is immutable afterwards (the channel close publishes it).
type recordEntry struct {
	ready chan struct{}
	rec   *Record
}

// settled reports whether the entry's extraction has finished.
func (ent *recordEntry) settled() bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// recordShard is one lock domain of the shared record cache. Lookups are
// lock-free: readers load the published map snapshot through an atomic
// pointer and never touch the mutex. Writers (entry installation on a cold
// key, abandonment after a failed extraction) serialize on the mutex,
// build a fresh map copy, and publish it with a release store — the
// copy-on-write protocol, so a warm-cache session never contends with
// anyone. The atomic.Pointer Load carries acquire semantics, so a reader
// that observes the new map also observes every entry it references fully
// constructed; per-entry publication (rec then close(ready)) is ordered by
// the channel close as before.
type recordShard struct {
	mu      sync.Mutex // writers only; the read path never takes it
	entries atomic.Pointer[map[string]*recordEntry]
}

// lookup resolves a key against the published snapshot without locking.
func (sh *recordShard) lookup(key string) (*recordEntry, bool) {
	ent, ok := (*sh.entries.Load())[key]
	return ent, ok
}

// install adds an entry for key under the shard mutex, unless a competing
// writer installed one first — then that entry is returned instead. The
// new map is published atomically; readers see either the old or the new
// snapshot, never a partial one.
func (sh *recordShard) install(key string, ent *recordEntry) (*recordEntry, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.entries.Load()
	if existing, ok := old[key]; ok {
		return existing, false
	}
	next := make(map[string]*recordEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = ent
	sh.entries.Store(&next)
	return ent, true
}

// remove deletes key's entry if it is still ent (abandonment), publishing
// a map without it so a future session can retry the extraction.
func (sh *recordShard) remove(key string, ent *recordEntry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := *sh.entries.Load()
	if old[key] != ent {
		return
	}
	next := make(map[string]*recordEntry, len(old)-1)
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	sh.entries.Store(&next)
}

// SessionPool serves many independent engine sessions concurrently
// against one shared, sharded in-memory record cache layered over an
// optional RecordStore. This is the serving shape the paper motivates in
// §9: one library's ICRecord, decoded once, serves every application
// (session) that loads the library.
//
// Extraction is single-flight: the first session to run a cold key
// performs the Initial run and publishes the record; concurrent sessions
// for the same key either wait for it (WaitForRecord) or proceed
// conventionally — extraction is never duplicated. Published records are
// immutable and shared by reference; all per-session reuse state (hidden
// class validation, preload progress) lives in each engine's private
// Reuser, so N sessions can safely share one decoded *Record.
//
// A SessionPool is safe for concurrent use; call Serve from as many
// goroutines as desired.
type SessionPool struct {
	cache          *CodeCache
	store          *RecordStore
	remote         *RemoteTier
	wait           bool
	snapWarm       bool
	includeGlobals bool
	maxSteps       uint64
	traceCap       int
	quicken        bool
	fuse           bool
	sessionSeq     atomic.Uint64
	shards         []recordShard
	snapshots      sync.Map // key → *poolSnapshot, written once per key
	stats          profiler.PoolCounters
}

// poolSnapshot is a captured warm-start artifact: the heap snapshot of one
// finished Initial run plus the exact scripts it was captured from, so a
// restore is only ever applied to the workload it belongs to.
type poolSnapshot struct {
	snap    *Snapshot
	scripts []SessionScript
	sources map[string]string
}

// fits reports whether a request's scripts are byte-identical to the ones
// the snapshot was captured from.
func (ps *poolSnapshot) fits(scripts []SessionScript) bool {
	if len(scripts) != len(ps.scripts) {
		return false
	}
	for i, s := range scripts {
		if s.Name != ps.scripts[i].Name || s.Src != ps.scripts[i].Src {
			return false
		}
	}
	return true
}

// NewSessionPool creates a pool.
func NewSessionPool(opts PoolOptions) *SessionPool {
	cache := opts.Cache
	if cache == nil {
		cache = NewCodeCache()
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	p := &SessionPool{
		cache:          cache,
		store:          opts.Store,
		remote:         opts.Remote,
		wait:           opts.WaitForRecord,
		snapWarm:       opts.SnapshotWarmStart,
		includeGlobals: opts.IncludeGlobals,
		maxSteps:       opts.MaxSteps,
		traceCap:       opts.TraceCapacity,
		quicken:        opts.Quicken,
		fuse:           opts.Fuse,
		shards:         make([]recordShard, n),
	}
	for i := range p.shards {
		empty := make(map[string]*recordEntry)
		p.shards[i].entries.Store(&empty)
	}
	return p
}

// Stats snapshots the pool's aggregate statistics.
func (p *SessionPool) Stats() PoolStats { return p.stats.Snapshot() }

// CachedRecords returns the number of keys with a published record in the
// shared cache.
func (p *SessionPool) CachedRecords() int {
	n := 0
	for i := range p.shards {
		for _, ent := range *p.shards[i].entries.Load() {
			if ent.settled() && ent.rec != nil {
				n++
			}
		}
	}
	return n
}

// shardIndex maps a key to its lock-domain index (also the trace shard tag).
func (p *SessionPool) shardIndex(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck
	return h.Sum32() % uint32(len(p.shards))
}

// shard maps a key to its lock domain.
func (p *SessionPool) shard(key string) *recordShard {
	return &p.shards[p.shardIndex(key)]
}

// poolEvents records what happened to one session on its way through the
// pool, so the matching trace events can be emitted after the session
// settles (see SessionResult.Trace). Counts mirror the PoolCounters the
// trace reconciles against.
type poolEvents struct {
	hit          bool // shared-cache record served (stats.ReuseHit)
	own          bool // cold key, this session owned the extraction
	dedup        bool // extraction already in flight (stats.Deduped)
	waited       bool // blocked for the in-flight record (stats.Waited)
	conventional bool // ran record-free (stats.Conventional)
	storeLoad    bool // record decoded from the backing store
	storeErrs    int  // failed best-effort store operations
	extract      bool // Initial-run record extraction
	publish      string

	quarantine     bool // store load quarantined a corrupt record
	remoteHit      bool // record served by the remote service
	remoteMiss     bool // remote service had no record for the key
	remoteErrs     int  // failed remote-tier operations
	remotePublish  bool // extracted record published to the service
	remoteWait     bool // waited on a peer node's extraction
	remoteDegraded bool // fell off the remote tier (at most once)
	abandon        bool // owned entry settled without a record

	snapshotCapture bool // Initial run's heap snapshot captured for warm starts
	snapshotRestore bool // session served by snapshot restore, not execution
	snapshotErrs    int  // failed best-effort snapshot operations
}

// acquire resolves a key against the shared cache. It returns the shared
// record when one is published (rec != nil), or the entry this caller now
// owns and must settle (owned != nil), or (nil, nil) when the session
// should run conventionally: extraction is in flight elsewhere and the
// pool does not wait, or the awaited extraction failed. ev is updated with
// the acquisition outcome for the session's trace.
func (p *SessionPool) acquire(key string, ev *poolEvents) (rec *Record, owned *recordEntry) {
	sh := p.shard(key)
	if ent, ok := sh.lookup(key); ok {
		// Warm-cache fast path: resolved entirely against the published
		// snapshot, no shard mutex — sessions of hot keys never contend.
		return p.resolve(ent, ev), nil
	}
	// Cold key: fall to the write path. The mutex acquisition is counted
	// so an all-hot run can prove the read path stayed lock-free.
	p.stats.ShardLock()
	ent, installed := sh.install(key, &recordEntry{ready: make(chan struct{})})
	if installed {
		ev.own = true
		return nil, ent
	}
	// A competing writer installed the entry between our snapshot read and
	// the lock; treat it exactly like a fast-path find.
	return p.resolve(ent, ev), nil
}

// resolve classifies an existing cache entry for a session: a published
// record (reuse), a retired failed extraction (conventional, don't pile
// onto the retry), or an extraction in flight (wait for it, or go
// conventional when the pool doesn't wait or the awaited extraction
// failed). Returns the record to reuse, or nil for a conventional run.
func (p *SessionPool) resolve(ent *recordEntry, ev *poolEvents) *Record {
	if !ent.settled() {
		p.stats.Deduped()
		ev.dedup = true
		if p.wait {
			p.stats.Waited()
			ev.waited = true
			<-ent.ready
		}
	}
	if ent.settled() && ent.rec != nil {
		p.stats.ReuseHit()
		ev.hit = true
		return ent.rec
	}
	p.stats.Conventional()
	ev.conventional = true
	return nil
}

// publish settles an owned entry with a record; the channel close is the
// publication barrier for waiters.
func (p *SessionPool) publish(ent *recordEntry, rec *Record) {
	ent.rec = rec
	close(ent.ready)
}

// abandon settles an owned entry without a record and removes it from the
// cache so a future session can retry the extraction. Current waiters
// proceed conventionally.
func (p *SessionPool) abandon(key string, ent *recordEntry) {
	p.shard(key).remove(key, ent)
	close(ent.ready)
}

// Serve runs one session to completion and returns its result. Safe to
// call concurrently; see SessionPool for the single-flight discipline.
func (p *SessionPool) Serve(req SessionRequest) (*SessionResult, error) {
	if req.Key == "" {
		return nil, fmt.Errorf("ricjs: pool session needs a record key")
	}
	if len(req.Scripts) == 0 {
		return nil, fmt.Errorf("ricjs: pool session %q has no scripts", req.Key)
	}
	p.stats.Session()
	var tr *trace.Buffer
	if p.traceCap != 0 {
		tr = trace.NewBuffer(p.traceCap).Tag(p.sessionSeq.Add(1), p.shardIndex(req.Key))
	}

	var ev poolEvents
	rec, owned := p.acquire(req.Key, &ev)
	if rec != nil {
		if res, ok := p.serveSnapshot(req, &ev, tr); ok {
			p.settleTrace(tr, res, req.Key, &ev)
			return res, nil
		}
		res, _, err := p.runSession(req, rec, SessionReuse, tr)
		p.settleTrace(tr, res, req.Key, &ev)
		return res, err
	}
	if owned == nil {
		res, _, err := p.runSession(req, nil, SessionConventional, tr)
		p.settleTrace(tr, res, req.Key, &ev)
		return res, err
	}

	// Cold key, this session owns the in-process extraction slot. The tier
	// ladder runs remote service → backing store → extraction, every rung
	// best-effort: a failed tier pushes the session down, never out.
	if p.remote != nil {
		if rec := p.remoteAcquire(req.Key, &ev); rec != nil {
			p.publish(owned, rec)
			ev.publish = "remote"
			// Warm the local tier so the next process on this host skips
			// the network.
			p.storeSave(req.Key, rec, &ev)
			res, _, rerr := p.runSession(req, rec, SessionReuse, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		}
	}

	// A backing-store load beats re-extracting: the record was produced by
	// a previous process on this host.
	if p.store != nil {
		stored, quarantined, err := p.store.LoadStatus(req.Key)
		if quarantined {
			p.stats.Quarantined()
			ev.quarantine = true
		}
		if err != nil {
			p.stats.StoreError()
			ev.storeErrs++
		} else if stored != nil {
			p.stats.StoreLoad()
			ev.storeLoad = true
			p.publish(owned, stored)
			ev.publish = "store"
			// The fleet cache missed but this host has the record: warm the
			// remote tier for every other node.
			if p.remote != nil && ev.remoteMiss {
				p.remotePublish(req.Key, stored, &ev)
			}
			res, _, rerr := p.runSession(req, stored, SessionReuse, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		}
	}

	// Cluster-level single-flight: before extracting, claim the key
	// fleet-wide. Losing the claim means another node is extracting right
	// now — wait for its publication (bounded) or run conventionally, the
	// same discipline the in-process cache applies, lifted to the cluster.
	claimed := false
	if p.remote != nil && p.remote.available() {
		granted, ok := p.remote.claim(req.Key)
		switch {
		case !ok:
			// Coordination is down; extract locally, the worst case being a
			// duplicated extraction somewhere else in the fleet.
			p.stats.RemoteError()
			ev.remoteErrs++
			p.remoteDegrade(&ev)
		case !granted:
			if p.wait {
				p.stats.RemoteWait()
				ev.remoteWait = true
				rec, outcome := p.remote.awaitPublication(req.Key)
				if rec != nil {
					p.stats.RemoteHit()
					ev.remoteHit = true
					p.publish(owned, rec)
					ev.publish = "remote"
					p.storeSave(req.Key, rec, &ev)
					res, _, rerr := p.runSession(req, rec, SessionReuse, tr)
					p.settleTrace(tr, res, req.Key, &ev)
					return res, rerr
				}
				if outcome == remoteError {
					p.stats.RemoteError()
					ev.remoteErrs++
				}
				p.remoteDegrade(&ev)
			}
			// Don't pile onto the peer's extraction: run conventionally and
			// leave the key retryable in-process.
			p.abandon(req.Key, owned)
			ev.abandon = true
			p.stats.Conventional()
			ev.conventional = true
			res, _, rerr := p.runSession(req, nil, SessionConventional, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		default:
			claimed = true
		}
	}

	// Initial run: conventional execution that builds the IC state the
	// extraction reads. A failure abandons the entry so the key stays
	// retryable; waiters fall back to conventional runs.
	res, eng, err := p.runSession(req, nil, SessionInitial, tr)
	if err != nil {
		p.abandon(req.Key, owned)
		if claimed {
			p.remote.release(req.Key)
		}
		tr.Emit(trace.EvPoolAbandon, source.Site{}, req.Key, 0)
		return nil, err
	}
	record := eng.ExtractRecord(req.Key)
	p.stats.Extraction()
	ev.extract = true
	p.publish(owned, record)
	ev.publish = "extract"
	p.captureSnapshot(req, eng, &ev)
	p.storeSave(req.Key, record, &ev)
	if p.remote != nil {
		if !p.remotePublish(req.Key, record, &ev) && claimed {
			// The lease cannot be settled by publication; free it so the
			// fleet's key does not stay locked until TTL expiry.
			p.remote.release(req.Key)
		}
	}
	p.settleTrace(tr, res, req.Key, &ev)
	return res, nil
}

// remoteAcquire resolves a cold key against the remote tier, counting the
// outcome. Only a decoded record comes back; every failure mode returns
// nil and pushes the session down the ladder.
func (p *SessionPool) remoteAcquire(key string, ev *poolEvents) *Record {
	rec, outcome := p.remote.fetch(key)
	switch outcome {
	case remoteHit:
		p.stats.RemoteHit()
		ev.remoteHit = true
		return rec
	case remoteMiss:
		p.stats.RemoteMiss()
		ev.remoteMiss = true
		return nil
	default:
		p.stats.RemoteError()
		ev.remoteErrs++
		p.remoteDegrade(ev)
		return nil
	}
}

// remotePublish uploads a record to the service best-effort, counting the
// outcome; a failure marks the session remote-degraded.
func (p *SessionPool) remotePublish(key string, rec *Record, ev *poolEvents) bool {
	if !p.remote.available() {
		p.stats.RemoteError()
		ev.remoteErrs++
		p.remoteDegrade(ev)
		return false
	}
	if p.remote.publishRecord(key, rec) {
		p.stats.RemotePublish()
		ev.remotePublish = true
		return true
	}
	p.stats.RemoteError()
	ev.remoteErrs++
	p.remoteDegrade(ev)
	return false
}

// remoteDegrade marks the session as having fallen off the remote tier,
// at most once per session.
func (p *SessionPool) remoteDegrade(ev *poolEvents) {
	if !ev.remoteDegraded {
		p.stats.RemoteDegraded()
		ev.remoteDegraded = true
	}
}

// serveSnapshot tries to serve a warm-cache session by restoring the
// key's captured heap snapshot instead of executing its scripts. It only
// applies when both sides opted in, a snapshot exists, and the request's
// scripts are byte-identical to what the snapshot was captured from; any
// mismatch or restore failure falls back to the normal reuse run, so the
// flag can never change a session's correctness.
func (p *SessionPool) serveSnapshot(req SessionRequest, ev *poolEvents, tr *trace.Buffer) (*SessionResult, bool) {
	if !p.snapWarm || !req.WarmStart {
		return nil, false
	}
	v, ok := p.snapshots.Load(req.Key)
	if !ok {
		return nil, false
	}
	ps := v.(*poolSnapshot)
	if !ps.fits(req.Scripts) {
		return nil, false
	}
	eng := NewEngine(Options{
		Cache:       p.cache,
		Stdout:      req.Stdout,
		AddressSeed: req.AddressSeed,
		RandSeed:    req.RandSeed,
		MaxSteps:    p.maxSteps,
		Trace:       tr,
		Quicken:     p.quicken,
		Fuse:        p.fuse,
	})
	if err := eng.RestoreSnapshot(ps.snap, ps.sources); err != nil {
		p.stats.SnapshotError()
		ev.snapshotErrs++
		return nil, false
	}
	p.stats.SnapshotRestore()
	ev.snapshotRestore = true
	return &SessionResult{Mode: SessionSnapshot, Stats: eng.Stats(), Output: eng.Output()}, true
}

// captureSnapshot records the warm engine state of a finished Initial run
// for snapshot warm starts, best-effort: workloads with unrepresentable
// state (e.g. bound functions) simply skip the capture and are always
// served by execution.
func (p *SessionPool) captureSnapshot(req SessionRequest, eng *Engine, ev *poolEvents) {
	if !p.snapWarm {
		return
	}
	snap, err := eng.CaptureSnapshot(req.Key)
	if err != nil {
		p.stats.SnapshotError()
		ev.snapshotErrs++
		return
	}
	scripts := append([]SessionScript(nil), req.Scripts...)
	sources := make(map[string]string, len(scripts))
	for _, s := range scripts {
		sources[s.Name] = s.Src
	}
	p.snapshots.Store(req.Key, &poolSnapshot{snap: snap, scripts: scripts, sources: sources})
	p.stats.SnapshotCapture()
	ev.snapshotCapture = true
}

// storeSave persists a record to the backing store best-effort.
func (p *SessionPool) storeSave(key string, rec *Record, ev *poolEvents) {
	if p.store == nil {
		return
	}
	if serr := p.store.Save(key, rec); serr != nil {
		p.stats.StoreError()
		ev.storeErrs++
	}
}

// settleTrace emits a session's pool lifecycle events and hands its buffer
// to the result. It runs after the session's engine work is done: an
// engine degradation resets the buffer mid-run, so emitting any earlier
// could lose the events.
func (p *SessionPool) settleTrace(tr *trace.Buffer, res *SessionResult, key string, ev *poolEvents) {
	if tr == nil || res == nil {
		return
	}
	none := source.Site{}
	tr.Emit(trace.EvPoolSession, none, key, 0)
	if ev.hit {
		tr.Emit(trace.EvPoolAcquireHit, none, key, 0)
	}
	if ev.own {
		tr.Emit(trace.EvPoolAcquireOwn, none, key, 0)
	}
	if ev.dedup {
		tr.Emit(trace.EvPoolDedup, none, key, 0)
	}
	if ev.waited {
		tr.Emit(trace.EvPoolWait, none, key, 0)
	}
	if ev.conventional {
		tr.Emit(trace.EvPoolConventional, none, key, 0)
	}
	if ev.storeLoad {
		tr.Emit(trace.EvPoolStoreLoad, none, key, 0)
	}
	for i := 0; i < ev.storeErrs; i++ {
		tr.Emit(trace.EvPoolStoreError, none, key, 0)
	}
	if ev.extract {
		tr.Emit(trace.EvPoolExtract, none, key, 0)
	}
	if ev.publish != "" {
		tr.Emit(trace.EvPoolPublish, none, ev.publish, 0)
	}
	if ev.abandon {
		tr.Emit(trace.EvPoolAbandon, none, key, 0)
	}
	if ev.quarantine {
		tr.Emit(trace.EvPoolQuarantine, none, key, 0)
	}
	if ev.remoteHit {
		tr.Emit(trace.EvPoolRemoteHit, none, key, 0)
	}
	if ev.remoteMiss {
		tr.Emit(trace.EvPoolRemoteMiss, none, key, 0)
	}
	for i := 0; i < ev.remoteErrs; i++ {
		tr.Emit(trace.EvPoolRemoteError, none, key, 0)
	}
	if ev.remotePublish {
		tr.Emit(trace.EvPoolRemotePublish, none, key, 0)
	}
	if ev.remoteWait {
		tr.Emit(trace.EvPoolRemoteWait, none, key, 0)
	}
	if ev.remoteDegraded {
		tr.Emit(trace.EvPoolRemoteDegraded, none, key, 0)
	}
	if ev.snapshotCapture {
		tr.Emit(trace.EvPoolSnapshotCapture, none, key, 0)
	}
	if ev.snapshotRestore {
		tr.Emit(trace.EvPoolSnapshotRestore, none, key, 0)
	}
	for i := 0; i < ev.snapshotErrs; i++ {
		tr.Emit(trace.EvPoolSnapshotError, none, key, 0)
	}
	if res.Degraded {
		tr.Emit(trace.EvPoolDegraded, none, key, 0)
	}
	res.Trace = tr
}

// runSession executes one session on a fresh engine. rec, when non-nil,
// is the shared decoded record — handed to the engine by reference; the
// engine's Reuser keeps all mutable reuse state per-session.
func (p *SessionPool) runSession(req SessionRequest, rec *Record, mode SessionMode, tr *trace.Buffer) (*SessionResult, *Engine, error) {
	eng := NewEngine(Options{
		Cache:          p.cache,
		Record:         rec,
		IncludeGlobals: p.includeGlobals,
		Stdout:         req.Stdout,
		AddressSeed:    req.AddressSeed,
		RandSeed:       req.RandSeed,
		MaxSteps:       p.maxSteps,
		Trace:          tr,
		Quicken:        p.quicken,
		Fuse:           p.fuse,
	})
	for _, s := range req.Scripts {
		if err := eng.Run(s.Name, s.Src); err != nil {
			return nil, eng, err
		}
	}
	degraded, _ := eng.Degraded()
	if degraded {
		p.stats.Degraded()
	}
	return &SessionResult{
		Mode:     mode,
		Stats:    eng.Stats(),
		Output:   eng.Output(),
		Degraded: degraded,
	}, eng, nil
}
