package ricjs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"ricjs/internal/profiler"
)

// PoolStats is the aggregate statistics snapshot of a SessionPool:
// sessions served, shared-cache hits, extractions and their single-flight
// dedup, store traffic, and degradations.
type PoolStats = profiler.PoolSnapshot

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// Cache supplies compiled bytecode to every session; nil creates a
	// pool-private cache. The code cache is already concurrency-safe and
	// is shared as-is.
	Cache *CodeCache
	// Store optionally backs the in-memory record cache with persistence:
	// cold keys try a store load before extracting, and freshly extracted
	// records are saved back (both best-effort — store I/O failure never
	// fails a session, it only shows up in Stats().StoreErrors).
	Store *RecordStore
	// Shards is the number of record-cache shards (default 16). More
	// shards reduce lock contention between sessions of distinct keys.
	Shards int
	// WaitForRecord makes sessions that find an extraction in flight for
	// their key block until it settles and then reuse its record. The
	// default (false) runs such sessions conventionally instead: lower
	// latency, no reuse benefit for that session. Either way extraction
	// happens exactly once per cold key.
	WaitForRecord bool
	// IncludeGlobals extends extraction to global-object state (paper §6).
	IncludeGlobals bool
	// MaxSteps bounds every session's scripts (0 = unlimited).
	MaxSteps uint64
}

// SessionScript is one script of a session's workload.
type SessionScript struct {
	Name string
	Src  string
}

// SessionRequest describes one session: the record key it shares with
// other sessions of the same workload, the scripts to execute, and the
// per-session knobs.
type SessionRequest struct {
	// Key identifies the workload's record in the shared cache (and the
	// backing store). Sessions with equal keys share one decoded record.
	Key string
	// Scripts is the workload, executed in order on one engine.
	Scripts []SessionScript
	// Stdout receives print output; nil collects it into Result.Output.
	Stdout io.Writer
	// AddressSeed and RandSeed are forwarded to the engine (see Options).
	AddressSeed uint64
	RandSeed    uint64
}

// SessionMode reports how a session was served.
type SessionMode int

const (
	// SessionReuse means the session ran with a record from the shared
	// cache (or one it waited for).
	SessionReuse SessionMode = iota
	// SessionInitial means the session found its key cold, performed the
	// Initial run, and published the extracted record for everyone else.
	SessionInitial
	// SessionConventional means the session ran record-free: extraction
	// was already in flight elsewhere (and WaitForRecord was off, or the
	// awaited extraction failed).
	SessionConventional
)

// String returns the mode name.
func (m SessionMode) String() string {
	switch m {
	case SessionReuse:
		return "reuse"
	case SessionInitial:
		return "initial"
	case SessionConventional:
		return "conventional"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SessionResult is the outcome of one served session.
type SessionResult struct {
	// Mode is how the session ran.
	Mode SessionMode
	// Stats is the session engine's statistics snapshot.
	Stats Stats
	// Output is the collected print output when no Stdout was configured.
	Output string
	// Degraded reports that the engine abandoned reuse mid-session and
	// completed conventionally.
	Degraded bool
}

// recordEntry is one key's slot in the shared record cache. ready is
// closed when the entry settles; rec is written exactly once, before the
// close, and is immutable afterwards (the channel close publishes it).
type recordEntry struct {
	ready chan struct{}
	rec   *Record
}

// settled reports whether the entry's extraction has finished.
func (ent *recordEntry) settled() bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// recordShard is one lock domain of the shared record cache.
type recordShard struct {
	mu      sync.Mutex
	entries map[string]*recordEntry
}

// SessionPool serves many independent engine sessions concurrently
// against one shared, sharded in-memory record cache layered over an
// optional RecordStore. This is the serving shape the paper motivates in
// §9: one library's ICRecord, decoded once, serves every application
// (session) that loads the library.
//
// Extraction is single-flight: the first session to run a cold key
// performs the Initial run and publishes the record; concurrent sessions
// for the same key either wait for it (WaitForRecord) or proceed
// conventionally — extraction is never duplicated. Published records are
// immutable and shared by reference; all per-session reuse state (hidden
// class validation, preload progress) lives in each engine's private
// Reuser, so N sessions can safely share one decoded *Record.
//
// A SessionPool is safe for concurrent use; call Serve from as many
// goroutines as desired.
type SessionPool struct {
	cache          *CodeCache
	store          *RecordStore
	wait           bool
	includeGlobals bool
	maxSteps       uint64
	shards         []recordShard
	stats          profiler.PoolCounters
}

// NewSessionPool creates a pool.
func NewSessionPool(opts PoolOptions) *SessionPool {
	cache := opts.Cache
	if cache == nil {
		cache = NewCodeCache()
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	p := &SessionPool{
		cache:          cache,
		store:          opts.Store,
		wait:           opts.WaitForRecord,
		includeGlobals: opts.IncludeGlobals,
		maxSteps:       opts.MaxSteps,
		shards:         make([]recordShard, n),
	}
	for i := range p.shards {
		p.shards[i].entries = make(map[string]*recordEntry)
	}
	return p
}

// Stats snapshots the pool's aggregate statistics.
func (p *SessionPool) Stats() PoolStats { return p.stats.Snapshot() }

// CachedRecords returns the number of keys with a published record in the
// shared cache.
func (p *SessionPool) CachedRecords() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, ent := range sh.entries {
			if ent.settled() && ent.rec != nil {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// shard maps a key to its lock domain.
func (p *SessionPool) shard(key string) *recordShard {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck
	return &p.shards[h.Sum32()%uint32(len(p.shards))]
}

// acquire resolves a key against the shared cache. It returns the shared
// record when one is published (rec != nil), or the entry this caller now
// owns and must settle (owned != nil), or (nil, nil) when the session
// should run conventionally: extraction is in flight elsewhere and the
// pool does not wait, or the awaited extraction failed.
func (p *SessionPool) acquire(key string) (rec *Record, owned *recordEntry) {
	sh := p.shard(key)
	sh.mu.Lock()
	ent, ok := sh.entries[key]
	if !ok {
		ent = &recordEntry{ready: make(chan struct{})}
		sh.entries[key] = ent
		sh.mu.Unlock()
		return nil, ent
	}
	sh.mu.Unlock()
	if ent.settled() {
		if ent.rec != nil {
			p.stats.ReuseHit()
			return ent.rec, nil
		}
		// Settled without a record: a failed extraction is being retired;
		// run conventionally rather than pile onto the retry.
		p.stats.Conventional()
		return nil, nil
	}
	p.stats.Deduped()
	if p.wait {
		p.stats.Waited()
		<-ent.ready
		if ent.rec != nil {
			p.stats.ReuseHit()
			return ent.rec, nil
		}
	}
	p.stats.Conventional()
	return nil, nil
}

// publish settles an owned entry with a record; the channel close is the
// publication barrier for waiters.
func (p *SessionPool) publish(ent *recordEntry, rec *Record) {
	ent.rec = rec
	close(ent.ready)
}

// abandon settles an owned entry without a record and removes it from the
// cache so a future session can retry the extraction. Current waiters
// proceed conventionally.
func (p *SessionPool) abandon(key string, ent *recordEntry) {
	sh := p.shard(key)
	sh.mu.Lock()
	if sh.entries[key] == ent {
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	close(ent.ready)
}

// Serve runs one session to completion and returns its result. Safe to
// call concurrently; see SessionPool for the single-flight discipline.
func (p *SessionPool) Serve(req SessionRequest) (*SessionResult, error) {
	if req.Key == "" {
		return nil, fmt.Errorf("ricjs: pool session needs a record key")
	}
	if len(req.Scripts) == 0 {
		return nil, fmt.Errorf("ricjs: pool session %q has no scripts", req.Key)
	}
	p.stats.Session()

	rec, owned := p.acquire(req.Key)
	if rec != nil {
		res, _, err := p.runSession(req, rec, SessionReuse)
		return res, err
	}
	if owned == nil {
		res, _, err := p.runSession(req, nil, SessionConventional)
		return res, err
	}

	// Cold key, this session owns the extraction. A backing-store load
	// beats re-extracting: the record was produced by a previous process.
	if p.store != nil {
		stored, err := p.store.Load(req.Key)
		if err != nil {
			p.stats.StoreError()
		} else if stored != nil {
			p.stats.StoreLoad()
			p.publish(owned, stored)
			res, _, rerr := p.runSession(req, stored, SessionReuse)
			return res, rerr
		}
	}

	// Initial run: conventional execution that builds the IC state the
	// extraction reads. A failure abandons the entry so the key stays
	// retryable; waiters fall back to conventional runs.
	res, eng, err := p.runSession(req, nil, SessionInitial)
	if err != nil {
		p.abandon(req.Key, owned)
		return nil, err
	}
	record := eng.ExtractRecord(req.Key)
	p.stats.Extraction()
	p.publish(owned, record)
	if p.store != nil {
		if serr := p.store.Save(req.Key, record); serr != nil {
			p.stats.StoreError()
		}
	}
	return res, nil
}

// runSession executes one session on a fresh engine. rec, when non-nil,
// is the shared decoded record — handed to the engine by reference; the
// engine's Reuser keeps all mutable reuse state per-session.
func (p *SessionPool) runSession(req SessionRequest, rec *Record, mode SessionMode) (*SessionResult, *Engine, error) {
	eng := NewEngine(Options{
		Cache:          p.cache,
		Record:         rec,
		IncludeGlobals: p.includeGlobals,
		Stdout:         req.Stdout,
		AddressSeed:    req.AddressSeed,
		RandSeed:       req.RandSeed,
		MaxSteps:       p.maxSteps,
	})
	for _, s := range req.Scripts {
		if err := eng.Run(s.Name, s.Src); err != nil {
			return nil, eng, err
		}
	}
	degraded, _ := eng.Degraded()
	if degraded {
		p.stats.Degraded()
	}
	return &SessionResult{
		Mode:     mode,
		Stats:    eng.Stats(),
		Output:   eng.Output(),
		Degraded: degraded,
	}, eng, nil
}
