package ricjs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"

	"ricjs/internal/profiler"
	"ricjs/internal/source"
	"ricjs/internal/trace"
)

// PoolStats is the aggregate statistics snapshot of a SessionPool:
// sessions served, shared-cache hits, extractions and their single-flight
// dedup, store traffic, and degradations.
type PoolStats = profiler.PoolSnapshot

// PoolOptions configures a SessionPool.
type PoolOptions struct {
	// Cache supplies compiled bytecode to every session; nil creates a
	// pool-private cache. The code cache is already concurrency-safe and
	// is shared as-is.
	Cache *CodeCache
	// Store optionally backs the in-memory record cache with persistence:
	// cold keys try a store load before extracting, and freshly extracted
	// records are saved back (both best-effort — store I/O failure never
	// fails a session, it only shows up in Stats().StoreErrors).
	Store *RecordStore
	// Remote optionally layers the distributed record service above the
	// local store: cold keys try a remote fetch first, extraction is
	// coordinated fleet-wide through claims, and extracted records are
	// published for other nodes. Strictly best-effort — a dead, slow,
	// partitioned, or corrupt-serving server never fails a session, it
	// only pushes the session down the tier ladder (remote → store →
	// extract → conventional), visibly in Stats() and the trace.
	Remote *RemoteTier
	// Shards is the number of record-cache shards (default 16). More
	// shards reduce lock contention between sessions of distinct keys.
	Shards int
	// WaitForRecord makes sessions that find an extraction in flight for
	// their key block until it settles and then reuse its record. The
	// default (false) runs such sessions conventionally instead: lower
	// latency, no reuse benefit for that session. Either way extraction
	// happens exactly once per cold key.
	WaitForRecord bool
	// IncludeGlobals extends extraction to global-object state (paper §6).
	IncludeGlobals bool
	// MaxSteps bounds every session's scripts (0 = unlimited).
	MaxSteps uint64
	// TraceCapacity, when nonzero, gives every session a private trace
	// buffer (negative values pick the default ring capacity), tagged with
	// a pool-unique session ID and the record key's cache-shard index, and
	// returned in SessionResult.Trace. Zero disables tracing.
	TraceCapacity int
}

// SessionScript is one script of a session's workload.
type SessionScript struct {
	Name string
	Src  string
}

// SessionRequest describes one session: the record key it shares with
// other sessions of the same workload, the scripts to execute, and the
// per-session knobs.
type SessionRequest struct {
	// Key identifies the workload's record in the shared cache (and the
	// backing store). Sessions with equal keys share one decoded record.
	Key string
	// Scripts is the workload, executed in order on one engine.
	Scripts []SessionScript
	// Stdout receives print output; nil collects it into Result.Output.
	Stdout io.Writer
	// AddressSeed and RandSeed are forwarded to the engine (see Options).
	AddressSeed uint64
	RandSeed    uint64
}

// SessionMode reports how a session was served.
type SessionMode int

const (
	// SessionReuse means the session ran with a record from the shared
	// cache (or one it waited for).
	SessionReuse SessionMode = iota
	// SessionInitial means the session found its key cold, performed the
	// Initial run, and published the extracted record for everyone else.
	SessionInitial
	// SessionConventional means the session ran record-free: extraction
	// was already in flight elsewhere (and WaitForRecord was off, or the
	// awaited extraction failed).
	SessionConventional
)

// String returns the mode name.
func (m SessionMode) String() string {
	switch m {
	case SessionReuse:
		return "reuse"
	case SessionInitial:
		return "initial"
	case SessionConventional:
		return "conventional"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SessionResult is the outcome of one served session.
type SessionResult struct {
	// Mode is how the session ran.
	Mode SessionMode
	// Stats is the session engine's statistics snapshot.
	Stats Stats
	// Output is the collected print output when no Stdout was configured.
	Output string
	// Degraded reports that the engine abandoned reuse mid-session and
	// completed conventionally.
	Degraded bool
	// Trace is the session's trace buffer when the pool was created with
	// TraceCapacity set (nil otherwise). Pool lifecycle events are emitted
	// into it after the session settles, so a mid-run degradation — which
	// resets the buffer alongside the engine's fresh profiler — cannot wipe
	// them. Sessions that return an error drop their buffer.
	Trace *trace.Buffer
}

// recordEntry is one key's slot in the shared record cache. ready is
// closed when the entry settles; rec is written exactly once, before the
// close, and is immutable afterwards (the channel close publishes it).
type recordEntry struct {
	ready chan struct{}
	rec   *Record
}

// settled reports whether the entry's extraction has finished.
func (ent *recordEntry) settled() bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// recordShard is one lock domain of the shared record cache.
type recordShard struct {
	mu      sync.Mutex
	entries map[string]*recordEntry
}

// SessionPool serves many independent engine sessions concurrently
// against one shared, sharded in-memory record cache layered over an
// optional RecordStore. This is the serving shape the paper motivates in
// §9: one library's ICRecord, decoded once, serves every application
// (session) that loads the library.
//
// Extraction is single-flight: the first session to run a cold key
// performs the Initial run and publishes the record; concurrent sessions
// for the same key either wait for it (WaitForRecord) or proceed
// conventionally — extraction is never duplicated. Published records are
// immutable and shared by reference; all per-session reuse state (hidden
// class validation, preload progress) lives in each engine's private
// Reuser, so N sessions can safely share one decoded *Record.
//
// A SessionPool is safe for concurrent use; call Serve from as many
// goroutines as desired.
type SessionPool struct {
	cache          *CodeCache
	store          *RecordStore
	remote         *RemoteTier
	wait           bool
	includeGlobals bool
	maxSteps       uint64
	traceCap       int
	sessionSeq     atomic.Uint64
	shards         []recordShard
	stats          profiler.PoolCounters
}

// NewSessionPool creates a pool.
func NewSessionPool(opts PoolOptions) *SessionPool {
	cache := opts.Cache
	if cache == nil {
		cache = NewCodeCache()
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	p := &SessionPool{
		cache:          cache,
		store:          opts.Store,
		remote:         opts.Remote,
		wait:           opts.WaitForRecord,
		includeGlobals: opts.IncludeGlobals,
		maxSteps:       opts.MaxSteps,
		traceCap:       opts.TraceCapacity,
		shards:         make([]recordShard, n),
	}
	for i := range p.shards {
		p.shards[i].entries = make(map[string]*recordEntry)
	}
	return p
}

// Stats snapshots the pool's aggregate statistics.
func (p *SessionPool) Stats() PoolStats { return p.stats.Snapshot() }

// CachedRecords returns the number of keys with a published record in the
// shared cache.
func (p *SessionPool) CachedRecords() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, ent := range sh.entries {
			if ent.settled() && ent.rec != nil {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// shardIndex maps a key to its lock-domain index (also the trace shard tag).
func (p *SessionPool) shardIndex(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck
	return h.Sum32() % uint32(len(p.shards))
}

// shard maps a key to its lock domain.
func (p *SessionPool) shard(key string) *recordShard {
	return &p.shards[p.shardIndex(key)]
}

// poolEvents records what happened to one session on its way through the
// pool, so the matching trace events can be emitted after the session
// settles (see SessionResult.Trace). Counts mirror the PoolCounters the
// trace reconciles against.
type poolEvents struct {
	hit          bool // shared-cache record served (stats.ReuseHit)
	own          bool // cold key, this session owned the extraction
	dedup        bool // extraction already in flight (stats.Deduped)
	waited       bool // blocked for the in-flight record (stats.Waited)
	conventional bool // ran record-free (stats.Conventional)
	storeLoad    bool // record decoded from the backing store
	storeErrs    int  // failed best-effort store operations
	extract      bool // Initial-run record extraction
	publish      string

	quarantine     bool // store load quarantined a corrupt record
	remoteHit      bool // record served by the remote service
	remoteMiss     bool // remote service had no record for the key
	remoteErrs     int  // failed remote-tier operations
	remotePublish  bool // extracted record published to the service
	remoteWait     bool // waited on a peer node's extraction
	remoteDegraded bool // fell off the remote tier (at most once)
	abandon        bool // owned entry settled without a record
}

// acquire resolves a key against the shared cache. It returns the shared
// record when one is published (rec != nil), or the entry this caller now
// owns and must settle (owned != nil), or (nil, nil) when the session
// should run conventionally: extraction is in flight elsewhere and the
// pool does not wait, or the awaited extraction failed. ev is updated with
// the acquisition outcome for the session's trace.
func (p *SessionPool) acquire(key string, ev *poolEvents) (rec *Record, owned *recordEntry) {
	sh := p.shard(key)
	sh.mu.Lock()
	ent, ok := sh.entries[key]
	if !ok {
		ent = &recordEntry{ready: make(chan struct{})}
		sh.entries[key] = ent
		sh.mu.Unlock()
		ev.own = true
		return nil, ent
	}
	sh.mu.Unlock()
	if ent.settled() {
		if ent.rec != nil {
			p.stats.ReuseHit()
			ev.hit = true
			return ent.rec, nil
		}
		// Settled without a record: a failed extraction is being retired;
		// run conventionally rather than pile onto the retry.
		p.stats.Conventional()
		ev.conventional = true
		return nil, nil
	}
	p.stats.Deduped()
	ev.dedup = true
	if p.wait {
		p.stats.Waited()
		ev.waited = true
		<-ent.ready
		if ent.rec != nil {
			p.stats.ReuseHit()
			ev.hit = true
			return ent.rec, nil
		}
	}
	p.stats.Conventional()
	ev.conventional = true
	return nil, nil
}

// publish settles an owned entry with a record; the channel close is the
// publication barrier for waiters.
func (p *SessionPool) publish(ent *recordEntry, rec *Record) {
	ent.rec = rec
	close(ent.ready)
}

// abandon settles an owned entry without a record and removes it from the
// cache so a future session can retry the extraction. Current waiters
// proceed conventionally.
func (p *SessionPool) abandon(key string, ent *recordEntry) {
	sh := p.shard(key)
	sh.mu.Lock()
	if sh.entries[key] == ent {
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	close(ent.ready)
}

// Serve runs one session to completion and returns its result. Safe to
// call concurrently; see SessionPool for the single-flight discipline.
func (p *SessionPool) Serve(req SessionRequest) (*SessionResult, error) {
	if req.Key == "" {
		return nil, fmt.Errorf("ricjs: pool session needs a record key")
	}
	if len(req.Scripts) == 0 {
		return nil, fmt.Errorf("ricjs: pool session %q has no scripts", req.Key)
	}
	p.stats.Session()
	var tr *trace.Buffer
	if p.traceCap != 0 {
		tr = trace.NewBuffer(p.traceCap).Tag(p.sessionSeq.Add(1), p.shardIndex(req.Key))
	}

	var ev poolEvents
	rec, owned := p.acquire(req.Key, &ev)
	if rec != nil {
		res, _, err := p.runSession(req, rec, SessionReuse, tr)
		p.settleTrace(tr, res, req.Key, &ev)
		return res, err
	}
	if owned == nil {
		res, _, err := p.runSession(req, nil, SessionConventional, tr)
		p.settleTrace(tr, res, req.Key, &ev)
		return res, err
	}

	// Cold key, this session owns the in-process extraction slot. The tier
	// ladder runs remote service → backing store → extraction, every rung
	// best-effort: a failed tier pushes the session down, never out.
	if p.remote != nil {
		if rec := p.remoteAcquire(req.Key, &ev); rec != nil {
			p.publish(owned, rec)
			ev.publish = "remote"
			// Warm the local tier so the next process on this host skips
			// the network.
			p.storeSave(req.Key, rec, &ev)
			res, _, rerr := p.runSession(req, rec, SessionReuse, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		}
	}

	// A backing-store load beats re-extracting: the record was produced by
	// a previous process on this host.
	if p.store != nil {
		stored, quarantined, err := p.store.LoadStatus(req.Key)
		if quarantined {
			p.stats.Quarantined()
			ev.quarantine = true
		}
		if err != nil {
			p.stats.StoreError()
			ev.storeErrs++
		} else if stored != nil {
			p.stats.StoreLoad()
			ev.storeLoad = true
			p.publish(owned, stored)
			ev.publish = "store"
			// The fleet cache missed but this host has the record: warm the
			// remote tier for every other node.
			if p.remote != nil && ev.remoteMiss {
				p.remotePublish(req.Key, stored, &ev)
			}
			res, _, rerr := p.runSession(req, stored, SessionReuse, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		}
	}

	// Cluster-level single-flight: before extracting, claim the key
	// fleet-wide. Losing the claim means another node is extracting right
	// now — wait for its publication (bounded) or run conventionally, the
	// same discipline the in-process cache applies, lifted to the cluster.
	claimed := false
	if p.remote != nil && p.remote.available() {
		granted, ok := p.remote.claim(req.Key)
		switch {
		case !ok:
			// Coordination is down; extract locally, the worst case being a
			// duplicated extraction somewhere else in the fleet.
			p.stats.RemoteError()
			ev.remoteErrs++
			p.remoteDegrade(&ev)
		case !granted:
			if p.wait {
				p.stats.RemoteWait()
				ev.remoteWait = true
				rec, outcome := p.remote.awaitPublication(req.Key)
				if rec != nil {
					p.stats.RemoteHit()
					ev.remoteHit = true
					p.publish(owned, rec)
					ev.publish = "remote"
					p.storeSave(req.Key, rec, &ev)
					res, _, rerr := p.runSession(req, rec, SessionReuse, tr)
					p.settleTrace(tr, res, req.Key, &ev)
					return res, rerr
				}
				if outcome == remoteError {
					p.stats.RemoteError()
					ev.remoteErrs++
				}
				p.remoteDegrade(&ev)
			}
			// Don't pile onto the peer's extraction: run conventionally and
			// leave the key retryable in-process.
			p.abandon(req.Key, owned)
			ev.abandon = true
			p.stats.Conventional()
			ev.conventional = true
			res, _, rerr := p.runSession(req, nil, SessionConventional, tr)
			p.settleTrace(tr, res, req.Key, &ev)
			return res, rerr
		default:
			claimed = true
		}
	}

	// Initial run: conventional execution that builds the IC state the
	// extraction reads. A failure abandons the entry so the key stays
	// retryable; waiters fall back to conventional runs.
	res, eng, err := p.runSession(req, nil, SessionInitial, tr)
	if err != nil {
		p.abandon(req.Key, owned)
		if claimed {
			p.remote.release(req.Key)
		}
		tr.Emit(trace.EvPoolAbandon, source.Site{}, req.Key, 0)
		return nil, err
	}
	record := eng.ExtractRecord(req.Key)
	p.stats.Extraction()
	ev.extract = true
	p.publish(owned, record)
	ev.publish = "extract"
	p.storeSave(req.Key, record, &ev)
	if p.remote != nil {
		if !p.remotePublish(req.Key, record, &ev) && claimed {
			// The lease cannot be settled by publication; free it so the
			// fleet's key does not stay locked until TTL expiry.
			p.remote.release(req.Key)
		}
	}
	p.settleTrace(tr, res, req.Key, &ev)
	return res, nil
}

// remoteAcquire resolves a cold key against the remote tier, counting the
// outcome. Only a decoded record comes back; every failure mode returns
// nil and pushes the session down the ladder.
func (p *SessionPool) remoteAcquire(key string, ev *poolEvents) *Record {
	rec, outcome := p.remote.fetch(key)
	switch outcome {
	case remoteHit:
		p.stats.RemoteHit()
		ev.remoteHit = true
		return rec
	case remoteMiss:
		p.stats.RemoteMiss()
		ev.remoteMiss = true
		return nil
	default:
		p.stats.RemoteError()
		ev.remoteErrs++
		p.remoteDegrade(ev)
		return nil
	}
}

// remotePublish uploads a record to the service best-effort, counting the
// outcome; a failure marks the session remote-degraded.
func (p *SessionPool) remotePublish(key string, rec *Record, ev *poolEvents) bool {
	if !p.remote.available() {
		p.stats.RemoteError()
		ev.remoteErrs++
		p.remoteDegrade(ev)
		return false
	}
	if p.remote.publishRecord(key, rec) {
		p.stats.RemotePublish()
		ev.remotePublish = true
		return true
	}
	p.stats.RemoteError()
	ev.remoteErrs++
	p.remoteDegrade(ev)
	return false
}

// remoteDegrade marks the session as having fallen off the remote tier,
// at most once per session.
func (p *SessionPool) remoteDegrade(ev *poolEvents) {
	if !ev.remoteDegraded {
		p.stats.RemoteDegraded()
		ev.remoteDegraded = true
	}
}

// storeSave persists a record to the backing store best-effort.
func (p *SessionPool) storeSave(key string, rec *Record, ev *poolEvents) {
	if p.store == nil {
		return
	}
	if serr := p.store.Save(key, rec); serr != nil {
		p.stats.StoreError()
		ev.storeErrs++
	}
}

// settleTrace emits a session's pool lifecycle events and hands its buffer
// to the result. It runs after the session's engine work is done: an
// engine degradation resets the buffer mid-run, so emitting any earlier
// could lose the events.
func (p *SessionPool) settleTrace(tr *trace.Buffer, res *SessionResult, key string, ev *poolEvents) {
	if tr == nil || res == nil {
		return
	}
	none := source.Site{}
	tr.Emit(trace.EvPoolSession, none, key, 0)
	if ev.hit {
		tr.Emit(trace.EvPoolAcquireHit, none, key, 0)
	}
	if ev.own {
		tr.Emit(trace.EvPoolAcquireOwn, none, key, 0)
	}
	if ev.dedup {
		tr.Emit(trace.EvPoolDedup, none, key, 0)
	}
	if ev.waited {
		tr.Emit(trace.EvPoolWait, none, key, 0)
	}
	if ev.conventional {
		tr.Emit(trace.EvPoolConventional, none, key, 0)
	}
	if ev.storeLoad {
		tr.Emit(trace.EvPoolStoreLoad, none, key, 0)
	}
	for i := 0; i < ev.storeErrs; i++ {
		tr.Emit(trace.EvPoolStoreError, none, key, 0)
	}
	if ev.extract {
		tr.Emit(trace.EvPoolExtract, none, key, 0)
	}
	if ev.publish != "" {
		tr.Emit(trace.EvPoolPublish, none, ev.publish, 0)
	}
	if ev.abandon {
		tr.Emit(trace.EvPoolAbandon, none, key, 0)
	}
	if ev.quarantine {
		tr.Emit(trace.EvPoolQuarantine, none, key, 0)
	}
	if ev.remoteHit {
		tr.Emit(trace.EvPoolRemoteHit, none, key, 0)
	}
	if ev.remoteMiss {
		tr.Emit(trace.EvPoolRemoteMiss, none, key, 0)
	}
	for i := 0; i < ev.remoteErrs; i++ {
		tr.Emit(trace.EvPoolRemoteError, none, key, 0)
	}
	if ev.remotePublish {
		tr.Emit(trace.EvPoolRemotePublish, none, key, 0)
	}
	if ev.remoteWait {
		tr.Emit(trace.EvPoolRemoteWait, none, key, 0)
	}
	if ev.remoteDegraded {
		tr.Emit(trace.EvPoolRemoteDegraded, none, key, 0)
	}
	if res.Degraded {
		tr.Emit(trace.EvPoolDegraded, none, key, 0)
	}
	res.Trace = tr
}

// runSession executes one session on a fresh engine. rec, when non-nil,
// is the shared decoded record — handed to the engine by reference; the
// engine's Reuser keeps all mutable reuse state per-session.
func (p *SessionPool) runSession(req SessionRequest, rec *Record, mode SessionMode, tr *trace.Buffer) (*SessionResult, *Engine, error) {
	eng := NewEngine(Options{
		Cache:          p.cache,
		Record:         rec,
		IncludeGlobals: p.includeGlobals,
		Stdout:         req.Stdout,
		AddressSeed:    req.AddressSeed,
		RandSeed:       req.RandSeed,
		MaxSteps:       p.maxSteps,
		Trace:          tr,
	})
	for _, s := range req.Scripts {
		if err := eng.Run(s.Name, s.Src); err != nil {
			return nil, eng, err
		}
	}
	degraded, _ := eng.Degraded()
	if degraded {
		p.stats.Degraded()
	}
	return &SessionResult{
		Mode:     mode,
		Stats:    eng.Stats(),
		Output:   eng.Output(),
		Degraded: degraded,
	}, eng, nil
}
