package ricjs

import (
	"bytes"
	"strings"
	"testing"
)

const demoLib = `
	function Widget(id) { this.id = id; this.visible = false; this.children = []; }
	Widget.prototype.show = function () { this.visible = true; return this; };
	Widget.prototype.add = function (w) { this.children.push(w); return this; };
	var root = new Widget(0).show();
	for (var i = 1; i <= 15; i++) root.add(new Widget(i));
	var count = 0;
	for (var j = 0; j < root.children.length; j++) {
		if (root.children[j].id % 2 === 0) count++;
	}
	print('widgets', root.children.length, 'even', count);
`

func TestEngineRunAndOutput(t *testing.T) {
	e := NewEngine(Options{AddressSeed: 1})
	if err := e.Run("demo.js", demoLib); err != nil {
		t.Fatal(err)
	}
	if got := e.Output(); got != "widgets 15 even 7\n" {
		t.Fatalf("output = %q", got)
	}
	s := e.Stats()
	if s.ICMisses == 0 || s.ICHits == 0 {
		t.Fatalf("stats look empty: %+v", s)
	}
}

func TestEngineStdoutWriter(t *testing.T) {
	var buf bytes.Buffer
	e := NewEngine(Options{Stdout: &buf})
	if err := e.Run("w.js", "print('hi');"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hi\n" {
		t.Fatalf("stdout = %q", buf.String())
	}
	if e.Output() != "" {
		t.Fatal("internal buffer must stay empty with an external writer")
	}
}

func TestEngineRunErrors(t *testing.T) {
	e := NewEngine(Options{})
	if err := e.Run("bad.js", "var ;"); err == nil || !strings.Contains(err.Error(), "bad.js") {
		t.Fatalf("err = %v", err)
	}
	if err := e.Run("boom.js", "throw 'x';"); err == nil || !strings.Contains(err.Error(), "boom.js") {
		t.Fatalf("err = %v", err)
	}
}

func TestFullRICPipeline(t *testing.T) {
	cache := NewCodeCache()

	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("demo.js", demoLib); err != nil {
		t.Fatal(err)
	}
	record := initial.ExtractRecord("demo.js")
	if record.Stats().DependentSlots == 0 {
		t.Fatal("record has no dependents")
	}
	if record.Label() != "demo.js" {
		t.Fatalf("label = %q", record.Label())
	}

	// Persist and reload, as a browser would between sessions.
	data := record.Encode()
	if len(data) == 0 {
		t.Fatal("empty record encoding")
	}
	restored, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}

	conventional := NewEngine(Options{Cache: cache})
	if err := conventional.Run("demo.js", demoLib); err != nil {
		t.Fatal(err)
	}
	reuse := NewEngine(Options{Cache: cache, Record: restored})
	if err := reuse.Run("demo.js", demoLib); err != nil {
		t.Fatal(err)
	}

	if conventional.Output() != reuse.Output() {
		t.Fatalf("outputs differ: %q vs %q", conventional.Output(), reuse.Output())
	}
	cs, rs := conventional.Stats(), reuse.Stats()
	if rs.ICMisses >= cs.ICMisses {
		t.Fatalf("reuse misses %d !< conventional %d", rs.ICMisses, cs.ICMisses)
	}
	if rs.MissRate() >= cs.MissRate() {
		t.Fatalf("reuse miss rate %.2f !< conventional %.2f", rs.MissRate(), cs.MissRate())
	}
	if rs.TotalInstr() >= cs.TotalInstr() {
		t.Fatalf("reuse instructions %d !< conventional %d", rs.TotalInstr(), cs.TotalInstr())
	}
	if rs.MissesSaved == 0 {
		t.Fatal("no saved misses")
	}
	if reuse.ValidatedHCs() == 0 {
		t.Fatal("no validated hidden classes")
	}
	if conventional.ValidatedHCs() != 0 {
		t.Fatal("conventional run must not validate")
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecord([]byte("garbage")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCodeCacheSharedAcrossEngines(t *testing.T) {
	cache := NewCodeCache()
	for i := 0; i < 3; i++ {
		e := NewEngine(Options{Cache: cache})
		if err := e.Run("s.js", "var v = {a: 1}; print(v.a);"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := cache.c.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("cache hits=%d misses=%d", hits, misses)
	}
}

func TestMultiScriptWebsiteReuse(t *testing.T) {
	libA := `
		function A(v) { this.v = v; }
		A.prototype.get = function () { return this.v; };
		var as = [];
		for (var i = 0; i < 10; i++) as.push(new A(i));
		var sa = 0;
		for (var j = 0; j < 10; j++) sa += as[j].v;
		print('A', sa);
	`
	libB := `
		function B(n) { this.n = n; this.sq = n * n; }
		var bs = [];
		for (var i = 0; i < 10; i++) bs.push(new B(i));
		var sb = 0;
		for (var j = 0; j < 10; j++) sb += bs[j].sq;
		print('B', sb);
	`
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("a.js", libA); err != nil {
		t.Fatal(err)
	}
	if err := initial.Run("b.js", libB); err != nil {
		t.Fatal(err)
	}
	rec := initial.ExtractRecord("site1")

	// Reuse with the opposite load order (the paper's two-website setup).
	reuse := NewEngine(Options{Cache: cache, Record: rec})
	if err := reuse.Run("b.js", libB); err != nil {
		t.Fatal(err)
	}
	if err := reuse.Run("a.js", libA); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reuse.Output(), "A 45") || !strings.Contains(reuse.Output(), "B 285") {
		t.Fatalf("output = %q", reuse.Output())
	}
	if reuse.Stats().MissesSaved == 0 {
		t.Fatal("cross-order reuse saved no misses")
	}
}

func TestRecordAcrossDifferentAddressSpaces(t *testing.T) {
	// The whole point: records must work even though every run sees
	// different heap addresses. Use fresh (process-unique) seeds.
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("demo.js", demoLib); err != nil {
		t.Fatal(err)
	}
	rec := initial.ExtractRecord("demo.js")
	for i := 0; i < 3; i++ {
		reuse := NewEngine(Options{Cache: cache, Record: rec})
		if err := reuse.Run("demo.js", demoLib); err != nil {
			t.Fatal(err)
		}
		if reuse.Stats().MissesSaved == 0 {
			t.Fatalf("iteration %d saved no misses", i)
		}
	}
}

func TestIncludeGlobalsOption(t *testing.T) {
	src := "var g1 = 1; var g2 = 2; function f() { return g1 + g2; } print(f());"
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache, IncludeGlobals: true})
	if err := initial.Run("g.js", src); err != nil {
		t.Fatal(err)
	}
	rec := initial.ExtractRecord("g.js")
	reuse := NewEngine(Options{Cache: cache, Record: rec})
	if err := reuse.Run("g.js", src); err != nil {
		t.Fatal(err)
	}
	if reuse.Output() != "3\n" {
		t.Fatalf("output = %q", reuse.Output())
	}
}

func TestDegradedEngineWritesDirectly(t *testing.T) {
	// Extract a record from version 1 of a script...
	v1 := `
		function P(x, y) { this.x = x; this.y = y; }
		var ps = [];
		for (var i = 0; i < 10; i++) ps.push(new P(i, i));
		var s = 0;
		for (var j = 0; j < ps.length; j++) s += ps[j].x + ps[j].y;
		print('v1', s);
	`
	init := NewEngine(Options{})
	if err := init.Run("lib.js", v1); err != nil {
		t.Fatal(err)
	}
	rec := init.ExtractRecord("lib.js")

	// ...and replay the session against version 2, whose access sites no
	// longer exist: validation fails and the engine degrades.
	var buf bytes.Buffer
	eng := NewEngine(Options{Record: rec, Stdout: &buf})
	if err := eng.Run("pre.js", "print('pre');"); err != nil {
		t.Fatal(err)
	}
	v2 := "var done = true; print('v2 ran');"
	if err := eng.Run("lib.js", v2); err != nil {
		t.Fatal(err)
	}
	if degraded, cause := eng.Degraded(); !degraded || cause == nil || cause.Phase != "validate" {
		t.Fatalf("engine must degrade at validate, got degraded=%v cause=%v", degraded, cause)
	}
	// Replay must not duplicate already-delivered output.
	if got := buf.String(); got != "pre\nv2 ran\n" {
		t.Fatalf("output = %q, want each line exactly once", got)
	}

	// The bug this pins: degrade used to leave e.rec set, so runWriter kept
	// staging output through e.staged forever even though no further
	// degradation is possible. Post-degradation writes must go straight to
	// the external Stdout.
	if eng.rec != nil {
		t.Fatal("degrade must clear the record")
	}
	if eng.router == nil || eng.router.w != &buf {
		t.Fatalf("post-degradation writer = %T, want the external Stdout", eng.router.w)
	}
	if err := eng.Run("post.js", "print('post');"); err != nil {
		t.Fatal(err)
	}
	if eng.staged != nil && eng.staged.Len() != 0 {
		t.Fatalf("staged buffer still in use after degradation: %q", eng.staged.String())
	}
	if got := buf.String(); got != "pre\nv2 ran\npost\n" {
		t.Fatalf("output after post-degradation run = %q", got)
	}
}

func TestDegradedOutputBypassesStaging(t *testing.T) {
	// Black-box check that post-degradation print output reaches the
	// external writer during execution, not via a post-run staged flush:
	// the VM must hold the direct writer.
	var buf bytes.Buffer
	init := NewEngine(Options{})
	if err := init.Run("a.js", "function A(){this.v=1;} var a=new A(); print(a.v);"); err != nil {
		t.Fatal(err)
	}
	rec := init.ExtractRecord("a.js")
	eng := NewEngine(Options{Record: rec, Stdout: &buf})
	if err := eng.Run("a.js", "print('different');"); err != nil {
		t.Fatal(err)
	}
	if degraded, _ := eng.Degraded(); !degraded {
		t.Fatal("stale record must degrade")
	}
	if got := buf.String(); got != "different\n" {
		t.Fatalf("output = %q", got)
	}
}
