module ricjs

go 1.22
