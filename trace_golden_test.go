package ricjs

// Golden-trace and trace/profiler reconciliation tests: the structured
// event stream (internal/trace) is locked against committed per-workload
// summaries, shown to be deterministic across repeated runs, and proven to
// roll up to exactly the profiler's aggregate counters — including for
// degraded engines and SessionPool sessions.

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ricjs/internal/trace"
	"ricjs/internal/workloads"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden trace summaries under testdata/traces")

// tracedPair runs one library's Initial and Reuse runs with tracing on and
// returns both engines (Initial first).
func tracedPair(t *testing.T, p workloads.Profile) (*Engine, *Engine) {
	t.Helper()
	src := p.Source()
	cache := NewCodeCache()

	initial := NewEngine(Options{Cache: cache, Trace: NewTrace(0)})
	if err := initial.Run(p.Script, src); err != nil {
		t.Fatal(err)
	}
	record := initial.ExtractRecord(p.Name)

	reuse := NewEngine(Options{Cache: cache, Record: record, Trace: NewTrace(0)})
	if err := reuse.Run(p.Script, src); err != nil {
		t.Fatal(err)
	}
	return initial, reuse
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", "traces", name)
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test -run TestGoldenTraces -update .` to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("trace summary drifted from %s.\nRe-run with -update if the change is intended.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenTraces pins every workload's Initial- and Reuse-run event
// summaries against the committed files under testdata/traces. Any change
// to IC behaviour — promotion thresholds, preload policy, validation —
// shows up here as a diff against a reviewable text file.
func TestGoldenTraces(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			initial, reuse := tracedPair(t, p)
			checkGolden(t, p.Name+".initial.golden", initial.Trace().Summary().String())
			checkGolden(t, p.Name+".reuse.golden", reuse.Trace().Summary().String())
		})
	}
	t.Run("Website", func(t *testing.T) {
		// Cross-website reuse: record from website 1, consumed both by the
		// same load order and by website 2's different one (§6's robustness
		// setup). Every website gets an initial AND a reuse golden, so the
		// pairing invariant ci.sh checks holds for the whole directory.
		cache := NewCodeCache()
		runSite := func(n int, record *Record) *Engine {
			e := NewEngine(Options{Cache: cache, Record: record, Trace: NewTrace(0)})
			for _, s := range workloads.Website(n) {
				if err := e.Run(s.Name, s.Source); err != nil {
					t.Fatal(err)
				}
			}
			return e
		}
		initial1 := runSite(1, nil)
		record := initial1.ExtractRecord("website1")
		initial2 := runSite(2, nil)
		reuse1 := runSite(1, record)
		reuse2 := runSite(2, record)
		checkGolden(t, "Website1.initial.golden", initial1.Trace().Summary().String())
		checkGolden(t, "Website1.reuse.golden", reuse1.Trace().Summary().String())
		checkGolden(t, "Website2.initial.golden", initial2.Trace().Summary().String())
		checkGolden(t, "Website2.reuse.golden", reuse2.Trace().Summary().String())
	})
}

// TestTraceDeterminism runs every workload's Initial and Reuse runs twice
// each and requires byte-identical script output and identical trace
// summaries. AddressSeed stays 0 on purpose: every engine sees a different
// simulated heap base, so any address leaking into events or any
// iteration-order dependence in the summary would fail here.
func TestTraceDeterminism(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			i1, r1 := tracedPair(t, p)
			i2, r2 := tracedPair(t, p)
			if i1.Output() != i2.Output() {
				t.Error("Initial-run output differs between identical runs")
			}
			if r1.Output() != r2.Output() {
				t.Error("Reuse-run output differs between identical runs")
			}
			if r1.Output() != i1.Output() {
				t.Error("Reuse run changed script behaviour vs Initial run")
			}
			if a, b := i1.Trace().Summary().String(), i2.Trace().Summary().String(); a != b {
				t.Errorf("Initial-run trace summary not deterministic:\n%s\nvs\n%s", a, b)
			}
			if a, b := r1.Trace().Summary().String(), r2.Trace().Summary().String(); a != b {
				t.Errorf("Reuse-run trace summary not deterministic:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// reconcile asserts that an engine's profiler counters exactly equal the
// roll-up of its trace event stream.
func reconcile(t *testing.T, label string, s Stats, sum *trace.Summary) {
	t.Helper()
	checks := []struct {
		name    string
		counter uint64
		events  uint64
	}{
		{"ICHits", s.ICHits, sum.Count(trace.EvICHit) + sum.Count(trace.EvICHitPreloaded)},
		{"ICMisses", s.ICMisses, sum.Count(trace.EvICMissHandler) + sum.Count(trace.EvICMissGlobal) + sum.Count(trace.EvICMissOther)},
		{"MissHandler", s.MissHandler, sum.Count(trace.EvICMissHandler)},
		{"MissGlobal", s.MissGlobal, sum.Count(trace.EvICMissGlobal)},
		{"MissOther", s.MissOther, sum.Count(trace.EvICMissOther)},
		{"MissesSaved", s.MissesSaved, sum.Count(trace.EvICHitPreloaded)},
		{"Preloads", s.Preloads, sum.Count(trace.EvPreloadApplied)},
		{"Validations", s.Validations, sum.Count(trace.EvValidatePass)},
		{"ValFailures", s.ValFailures, sum.Count(trace.EvValidateFail)},
		{"HCCreated", s.HCCreated, sum.Count(trace.EvHCCreated)},
		{"HandlersMade", s.HandlersMade, sum.Count(trace.EvHandlerInstall) + sum.Count(trace.EvHandlerInstallCI)},
		{"HandlersContextIndep", s.HandlersContextIndep, sum.Count(trace.EvHandlerInstallCI)},
		{"DegradedRuns", s.DegradedRuns, sum.Count(trace.EvDegrade)},
		{"StaticFilteredPreloads", s.StaticFilteredPreloads, sum.Count(trace.EvPreloadFiltered)},
	}
	for _, c := range checks {
		if c.counter != c.events {
			t.Errorf("%s: profiler %s = %d but trace rolls up to %d", label, c.name, c.counter, c.events)
		}
	}
}

// TestTraceProfilerReconciliation checks, for every workload's Initial and
// Reuse runs, that the profiler aggregates are exactly the trace stream's
// roll-up: same events, counted two ways.
func TestTraceProfilerReconciliation(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			initial, reuse := tracedPair(t, p)
			reconcile(t, "initial", initial.Stats(), initial.Trace().Summary())
			reconcile(t, "reuse", reuse.Stats(), reuse.Trace().Summary())
			if n := reuse.Trace().Count(trace.EvICHitPreloaded); n == 0 {
				t.Error("reuse run traced no preloaded hits; tracing is not observing RIC")
			}
		})
	}
}

// TestTraceDegradedEngineReconciles drives both degradation paths — a
// record that fails to decode at construction, and a corrupt record that
// fails validation on Run — and checks that the trace buffer restarts with
// the fresh profiler so the two still reconcile.
func TestTraceDegradedEngineReconciles(t *testing.T) {
	t.Run("decode", func(t *testing.T) {
		tr := NewTrace(0)
		e := NewEngine(Options{RecordBytes: []byte("not a record"), Trace: tr})
		if err := e.Run("demo.js", demoLib); err != nil {
			t.Fatal(err)
		}
		if degraded, _ := e.Degraded(); !degraded {
			t.Fatal("engine did not degrade on a corrupt record")
		}
		if tr.Count(trace.EvDegrade) != 1 {
			t.Fatalf("EvDegrade count = %d, want 1", tr.Count(trace.EvDegrade))
		}
		reconcile(t, "decode-degraded", e.Stats(), tr.Summary())
	})
	t.Run("validate", func(t *testing.T) {
		// A record extracted from a diverging program version: the source
		// hash check fails on Run and the engine degrades mid-session.
		cache := NewCodeCache()
		initial := NewEngine(Options{Cache: cache})
		if err := initial.Run("demo.js", demoLib); err != nil {
			t.Fatal(err)
		}
		record := initial.ExtractRecord("demo")

		tr := NewTrace(0)
		e := NewEngine(Options{Record: record, Trace: tr})
		// Prepending a line shifts every access site, so the record's
		// dependent sites no longer exist in the compiled program.
		changed := "var v2 = true;\n" + demoLib
		if err := e.Run("demo.js", changed); err != nil {
			t.Fatal(err)
		}
		degraded, cause := e.Degraded()
		if !degraded {
			t.Fatal("engine did not degrade on a diverging record")
		}
		if tr.Count(trace.EvDegrade) != 1 {
			t.Fatalf("EvDegrade count = %d, want 1", tr.Count(trace.EvDegrade))
		}
		if ev := tr.Events(); len(ev) == 0 || ev[0].Type != trace.EvDegrade || ev[0].Name != cause.Phase {
			t.Fatalf("degradation must be the reset buffer's first event, carrying the phase; got %+v", ev[0])
		}
		reconcile(t, "validate-degraded", e.Stats(), tr.Summary())
	})
}

// TestSessionPoolTraceReconciliation serves concurrent sessions over
// shared keys with per-session tracing and checks (under -race in CI) that
// the pool's atomic counters equal the merged per-session event roll-up,
// and each session's engine counters equal its own buffer's.
func TestSessionPoolTraceReconciliation(t *testing.T) {
	libs := []string{"jQuery", "Underscore"}
	scripts := map[string][]SessionScript{}
	for _, name := range libs {
		p, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		scripts[name] = []SessionScript{{Name: p.Script, Src: p.Source()}}
	}

	pool := NewSessionPool(PoolOptions{WaitForRecord: true, TraceCapacity: -1})
	const perKey = 4
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []*SessionResult
	)
	for _, name := range libs {
		for i := 0; i < perKey; i++ {
			name := name
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := pool.Serve(SessionRequest{Key: name, Scripts: scripts[name]})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	if len(results) != perKey*len(libs) {
		t.Fatalf("served %d sessions, want %d", len(results), perKey*len(libs))
	}
	summaries := make([]*trace.Summary, 0, len(results))
	seenSessions := map[uint64]bool{}
	for i, res := range results {
		if res.Trace == nil {
			t.Fatalf("session %d has no trace buffer", i)
		}
		sum := res.Trace.Summary()
		reconcile(t, res.Mode.String(), res.Stats, sum)
		if id := res.Trace.Session(); id == 0 || seenSessions[id] {
			t.Errorf("session tag %d not pool-unique", id)
		} else {
			seenSessions[id] = true
		}
		summaries = append(summaries, sum)
	}

	merged := trace.MergeSummaries(summaries...)
	ps := pool.Stats()
	poolChecks := []struct {
		name    string
		counter uint64
		events  uint64
	}{
		{"Sessions", ps.Sessions, merged.Count(trace.EvPoolSession)},
		{"ReuseHits", ps.ReuseHits, merged.Count(trace.EvPoolAcquireHit)},
		{"Extractions", ps.Extractions, merged.Count(trace.EvPoolExtract)},
		{"StoreLoads", ps.StoreLoads, merged.Count(trace.EvPoolStoreLoad)},
		{"StoreErrors", ps.StoreErrors, merged.Count(trace.EvPoolStoreError)},
		{"DedupedExtractions", ps.DedupedExtractions, merged.Count(trace.EvPoolDedup)},
		{"WaitedSessions", ps.WaitedSessions, merged.Count(trace.EvPoolWait)},
		{"ConventionalRuns", ps.ConventionalRuns, merged.Count(trace.EvPoolConventional)},
		{"DegradedSessions", ps.DegradedSessions, merged.Count(trace.EvPoolDegraded)},
	}
	for _, c := range poolChecks {
		if c.counter != c.events {
			t.Errorf("pool %s = %d but merged traces roll up to %d", c.name, c.counter, c.events)
		}
	}
	if merged.Count(trace.EvPoolExtract) != uint64(len(libs)) {
		t.Errorf("extractions = %d, want one per key (%d)", merged.Count(trace.EvPoolExtract), len(libs))
	}
	if merged.Count(trace.EvPoolPublish) != uint64(len(libs)) {
		t.Errorf("publishes = %d, want one per key (%d)", merged.Count(trace.EvPoolPublish), len(libs))
	}
}
