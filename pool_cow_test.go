package ricjs_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ricjs"
)

// TestSessionPoolHotReadPathLockFree is the lock-freedom acceptance check
// of the copy-on-write shard read path: once every key's record is
// published, serving any number of warm sessions takes no shard mutex —
// the contention counter, which ticks only when acquire falls to the
// locked write path, stays exactly where the cold phase left it.
func TestSessionPoolHotReadPathLockFree(t *testing.T) {
	const (
		nkeys    = 4
		sessions = 32
	)
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{WaitForRecord: true})

	// Cold phase: publish every key's record (one lock acquisition per
	// cold install is expected and counted).
	for i := 0; i < nkeys; i++ {
		key, script, src := poolLib(i)
		if _, err := pool.Serve(ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cold := pool.Stats().ShardLockAcquires
	if cold == 0 || cold > nkeys {
		t.Fatalf("cold phase ShardLockAcquires = %d, want 1..%d (one per cold key)", cold, nkeys)
	}

	// Hot phase: every session resolves against the published snapshot.
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		key, script, src := poolLib(s % nkeys)
		wg.Add(1)
		go func(s int, req ricjs.SessionRequest) {
			defer wg.Done()
			_, errs[s] = pool.Serve(req)
		}(s, ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		})
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
	}

	stats := pool.Stats()
	if stats.ShardLockAcquires != cold {
		t.Fatalf("all-hot run took %d shard locks (counter %d -> %d), want 0 — the read path is no longer lock-free",
			stats.ShardLockAcquires-cold, cold, stats.ShardLockAcquires)
	}
	if stats.ReuseHits != sessions {
		t.Fatalf("ReuseHits = %d, want %d", stats.ReuseHits, sessions)
	}
}

// TestSessionPoolCOWPublishStress drives the copy-on-write publish
// protocol hard under -race: concurrent writers churn the shard maps
// (cold installs, failed extractions that abandon and remove their
// entries, retries of the same failed key) while readers resolve hot keys
// lock-free, and every successful session's output must stay
// byte-identical to a sequential conventional run — the differential
// proof that the lock-free path reads exactly what the locked path wrote.
func TestSessionPoolCOWPublishStress(t *testing.T) {
	const (
		nkeys    = 6
		sessions = 96
	)
	want := sequentialOutputs(t, nkeys)

	// One shard, so every key contends on the same copy-on-write map:
	// the worst case for the publish protocol.
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{WaitForRecord: true, Shards: 1})
	var wg sync.WaitGroup
	outs := make([]string, sessions)
	keys := make([]string, sessions)
	errs := make([]error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		if s%8 == 7 {
			// A failing session: its Initial run errors, so the owned
			// entry is abandoned and removed — map churn that must never
			// corrupt a concurrent reader's snapshot. Distinct keys per
			// attempt keep these cold forever.
			key := fmt.Sprintf("bad%d", s)
			keys[s] = key
			go func(s int, key string) {
				defer wg.Done()
				_, err := pool.Serve(ricjs.SessionRequest{
					Key:     key,
					Scripts: []ricjs.SessionScript{{Name: key + ".js", Src: "syntax error ("}},
				})
				if err == nil {
					errs[s] = fmt.Errorf("bad key %s: expected an error", key)
				}
			}(s, key)
			continue
		}
		key, script, src := poolLib(s % nkeys)
		keys[s] = key
		go func(s int, req ricjs.SessionRequest) {
			defer wg.Done()
			res, err := pool.Serve(req)
			if err != nil {
				errs[s] = err
				return
			}
			outs[s] = res.Output
		}(s, ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		})
	}
	wg.Wait()

	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		if strings.HasPrefix(keys[s], "bad") {
			continue
		}
		if outs[s] != want[keys[s]] {
			t.Fatalf("session %d (%s): output %q, sequential run produced %q",
				s, keys[s], outs[s], want[keys[s]])
		}
	}
	stats := pool.Stats()
	if stats.Extractions != nkeys {
		t.Fatalf("Extractions = %d, want %d (single-flight survived the churn)", stats.Extractions, nkeys)
	}
	if pool.CachedRecords() != nkeys {
		t.Fatalf("CachedRecords = %d, want %d (abandoned keys must be removed)", pool.CachedRecords(), nkeys)
	}
}

// TestSessionPoolSnapshotWarmStart covers the snapshot warm-start tier:
// the extraction owner captures a heap snapshot, an opted-in warm session
// is served by restore (no execution, no output), an opted-out session
// still runs byte-identically, and a warm request whose scripts differ
// from the captured ones falls back to execution.
func TestSessionPoolSnapshotWarmStart(t *testing.T) {
	key, script, src := poolLib(1)
	req := ricjs.SessionRequest{
		Key:     key,
		Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
	}
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{WaitForRecord: true, SnapshotWarmStart: true})

	first, err := pool.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Mode != ricjs.SessionInitial {
		t.Fatalf("first session mode = %v, want initial", first.Mode)
	}
	if got := pool.Stats().SnapshotCaptures; got != 1 {
		t.Fatalf("SnapshotCaptures = %d, want 1", got)
	}

	warmReq := req
	warmReq.WarmStart = true
	warm, err := pool.Serve(warmReq)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Mode != ricjs.SessionSnapshot {
		t.Fatalf("warm session mode = %v, want snapshot", warm.Mode)
	}
	if warm.Output != "" {
		t.Fatalf("snapshot-served session has output %q, want none (nothing executed)", warm.Output)
	}
	if got := pool.Stats().SnapshotRestores; got != 1 {
		t.Fatalf("SnapshotRestores = %d, want 1", got)
	}

	// Opting out still executes, byte-identically to the Initial run.
	cold, err := pool.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Mode != ricjs.SessionReuse {
		t.Fatalf("opted-out session mode = %v, want reuse", cold.Mode)
	}
	if cold.Output != first.Output {
		t.Fatalf("opted-out session output %q != initial output %q", cold.Output, first.Output)
	}

	// A warm request with different scripts must not be served someone
	// else's heap: the snapshot doesn't fit, so it executes.
	otherReq := ricjs.SessionRequest{
		Key:       key,
		WarmStart: true,
		Scripts:   []ricjs.SessionScript{{Name: script, Src: src + "\nprint('extra');\n"}},
	}
	other, err := pool.Serve(otherReq)
	if err != nil {
		t.Fatal(err)
	}
	if other.Mode != ricjs.SessionReuse {
		t.Fatalf("mismatched warm session mode = %v, want reuse (fallback to execution)", other.Mode)
	}
	if !strings.Contains(other.Output, "extra") {
		t.Fatalf("mismatched warm session did not execute its own scripts: %q", other.Output)
	}
	if got := pool.Stats().SnapshotRestores; got != 1 {
		t.Fatalf("SnapshotRestores = %d after mismatch, want still 1", got)
	}
}
