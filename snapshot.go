package ricjs

import (
	"fmt"

	"ricjs/internal/snapshot"
)

// Snapshot is a serialized heap snapshot of the script-created state of a
// run — the startup-acceleration technique the paper's §9 compares RIC
// against. Restoring a snapshot skips initialization entirely, which is
// faster than any Reuse run when it applies, but snapshots are
// application-specific (one exact heap; not shareable across apps the way
// per-library Records are) and freeze any nondeterminism the
// initialization had. This implementation exists as a comparator; see
// internal/snapshot for the trade-off discussion.
type Snapshot struct {
	s *snapshot.Snapshot
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() ([]byte, error) { return s.s.Encode() }

// Label returns the label the snapshot was captured under.
func (s *Snapshot) Label() string { return s.s.Label }

// Scripts lists the script names whose compiled code a restore needs.
func (s *Snapshot) Scripts() []string { return append([]string{}, s.s.Scripts...) }

// DecodeSnapshot parses a serialized snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	inner, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Snapshot{s: inner}, nil
}

// CaptureSnapshot serializes the engine's script-created heap: every
// global the scripts defined plus the object graph reachable from them.
// It fails on state it cannot represent (e.g. bound functions), like real
// snapshot systems do.
func (e *Engine) CaptureSnapshot(label string) (*Snapshot, error) {
	inner, err := snapshot.Capture(e.vm, label)
	if err != nil {
		return nil, fmt.Errorf("ricjs: %w", err)
	}
	return &Snapshot{s: inner}, nil
}

// RestoreSnapshot materializes a snapshot into this engine *without
// executing* the scripts. sources must supply the source text of every
// script the snapshot references (by the names reported by
// Snapshot.Scripts), so function objects can bind to compiled code; the
// code comes from the code cache, so restore pays no compilation either
// when the cache is warm.
func (e *Engine) RestoreSnapshot(snap *Snapshot, sources map[string]string) error {
	for _, script := range snap.s.Scripts {
		src, ok := sources[script]
		if !ok {
			return fmt.Errorf("ricjs: restore needs the source of %q", script)
		}
		prog, err := e.cache.c.Load(script, src)
		if err != nil {
			return fmt.Errorf("ricjs: restore: %w", err)
		}
		e.vm.RegisterProgram(prog)
	}
	if err := snapshot.Restore(e.vm, snap.s); err != nil {
		return fmt.Errorf("ricjs: %w", err)
	}
	return nil
}
