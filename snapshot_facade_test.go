package ricjs

import (
	"strings"
	"testing"
)

const snapLib = `
	function Svc(name) { this.name = name; this.calls = 0; }
	Svc.prototype.ping = function () { this.calls++; return this.name; };
	var services = {};
	services.db = new Svc('db');
	services.cache = new Svc('cache');
	var booted = true;
`

func TestSnapshotFacadeRoundTrip(t *testing.T) {
	cache := NewCodeCache()
	sources := map[string]string{"svc.js": snapLib}

	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("svc.js", snapLib); err != nil {
		t.Fatal(err)
	}
	snap, err := initial.CaptureSnapshot("svc")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label() != "svc" || len(snap.Scripts()) != 1 {
		t.Fatalf("snapshot meta: %q %v", snap.Label(), snap.Scripts())
	}

	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	restoredSnap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	target := NewEngine(Options{Cache: cache})
	if err := target.RestoreSnapshot(restoredSnap, sources); err != nil {
		t.Fatal(err)
	}
	// The restored heap works without the init script ever running here:
	// drive it with a new script.
	if err := target.Run("probe.js", "print(booted, services.db.ping(), services.cache.name);"); err != nil {
		t.Fatal(err)
	}
	if target.Output() != "true db cache\n" {
		t.Fatalf("output = %q", target.Output())
	}
}

func TestRestoreSnapshotMissingSource(t *testing.T) {
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("svc.js", snapLib); err != nil {
		t.Fatal(err)
	}
	snap, err := initial.CaptureSnapshot("svc")
	if err != nil {
		t.Fatal(err)
	}
	target := NewEngine(Options{Cache: cache})
	err = target.RestoreSnapshot(snap, map[string]string{})
	if err == nil || !strings.Contains(err.Error(), "svc.js") {
		t.Fatalf("err = %v", err)
	}
}

func TestCaptureSnapshotRejectsBoundFunctions(t *testing.T) {
	e := NewEngine(Options{})
	if err := e.Run("b.js", "function f() {} var g = f.bind(null);"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CaptureSnapshot("b"); err == nil {
		t.Fatal("bound functions must be rejected")
	}
}

func TestSnapshotFasterThanReExecution(t *testing.T) {
	// Not a timing assertion (too noisy for CI); instead verify the
	// restore executed zero bytecode: its instruction count stays 0.
	cache := NewCodeCache()
	initial := NewEngine(Options{Cache: cache})
	if err := initial.Run("svc.js", snapLib); err != nil {
		t.Fatal(err)
	}
	snap, err := initial.CaptureSnapshot("svc")
	if err != nil {
		t.Fatal(err)
	}
	target := NewEngine(Options{Cache: cache})
	if err := target.RestoreSnapshot(snap, map[string]string{"svc.js": snapLib}); err != nil {
		t.Fatal(err)
	}
	if got := target.Stats().TotalInstr(); got != 0 {
		t.Fatalf("restore executed %d instructions; must execute none", got)
	}
}
