package ricjs

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func extractDemo(t *testing.T, src, label string) *Record {
	t.Helper()
	e := NewEngine(Options{})
	if err := e.Run(label, src); err != nil {
		t.Fatal(err)
	}
	return e.ExtractRecord(label)
}

func TestRecordStoreSaveLoadRoundTrip(t *testing.T) {
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := extractDemo(t, demoLib, "demo.js")
	if err := store.Save("demo.js", rec); err != nil {
		t.Fatal(err)
	}
	back, err := store.Load("demo.js")
	if err != nil {
		t.Fatal(err)
	}
	if back == nil {
		t.Fatal("stored record not found")
	}
	if string(back.Encode()) != string(rec.Encode()) {
		t.Fatal("round trip changed the record")
	}
}

func TestRecordStoreMissingKey(t *testing.T) {
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := store.Load("never-saved")
	if err != nil || rec != nil {
		t.Fatalf("missing key must be (nil, nil), got (%v, %v)", rec, err)
	}
}

func TestRecordStoreCorruptQuarantines(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenRecordStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := extractDemo(t, demoLib, "demo.js")
	if err := store.Save("demo.js", rec); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored file.
	path := store.path("demo.js")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := store.Load("demo.js")
	if err != nil || back != nil {
		t.Fatalf("corrupt record must read as absent, got (%v, %v)", back, err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatal("corrupt record file must be moved out of the way")
	}
	if _, statErr := os.Stat(path + quarantineExt); statErr != nil {
		t.Fatalf("corrupt record must be quarantined, not deleted: %v", statErr)
	}
	quarantined, err := store.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Base(path) + quarantineExt}
	if !reflect.DeepEqual(quarantined, want) {
		t.Fatalf("Quarantined = %v, want %v", quarantined, want)
	}
	// Quarantined files must not surface as live keys, and saving again
	// under the same key must work (the regeneration path).
	if keys, _ := store.Keys(); len(keys) != 0 {
		t.Fatalf("Keys after quarantine = %v, want none", keys)
	}
	if err := store.Save("demo.js", rec); err != nil {
		t.Fatal(err)
	}
	if back, err := store.Load("demo.js"); err != nil || back == nil {
		t.Fatalf("regenerated record must load, got (%v, %v)", back, err)
	}
}

func TestRecordStoreOldFormatQuarantines(t *testing.T) {
	// A record in the superseded v2 wire format (no checksum) must be
	// treated as corrupt: quarantined and regenerated, never trusted.
	dir := t.TempDir()
	store, err := OpenRecordStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := store.path("old.js")
	if err := os.WriteFile(path, []byte("RICREC\x02legacy-payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := store.Load("old.js")
	if err != nil || back != nil {
		t.Fatalf("old-format record must read as absent, got (%v, %v)", back, err)
	}
	quarantined, err := store.Quarantined()
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("old-format record must be quarantined, got (%v, %v)", quarantined, err)
	}
}

func TestRecordStoreKeyCollision(t *testing.T) {
	// "a/b" and "a_b" sanitize to the same name; the key hash must keep
	// their files distinct.
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if store.path("a/b") == store.path("a_b") {
		t.Fatal("distinct keys map to the same file")
	}
	recA := extractDemo(t, demoLib, "a.js")
	recB := extractDemo(t, "function F(){this.f=1;} var f = new F(); print(f.f);", "b.js")
	if err := store.Save("a/b", recA); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("a_b", recB); err != nil {
		t.Fatal(err)
	}
	backA, err := store.Load("a/b")
	if err != nil || backA == nil {
		t.Fatal(err)
	}
	backB, err := store.Load("a_b")
	if err != nil || backB == nil {
		t.Fatal(err)
	}
	if string(backA.Encode()) != string(recA.Encode()) {
		t.Fatal("a/b record clobbered by a_b")
	}
	if string(backB.Encode()) != string(recB.Encode()) {
		t.Fatal("a_b record clobbered by a/b")
	}
}

func TestRecordStoreKeysAndDelete(t *testing.T) {
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := extractDemo(t, demoLib, "demo.js")
	for _, key := range []string{"b.js", "a.js", "weird/key with spaces"} {
		if err := store.Save(key, rec); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.js", "b.js", "weird/key with spaces"}
	sort.Strings(want)
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	if err := store.Delete("a.js"); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("a.js"); err != nil {
		t.Fatal("double delete must be a no-op")
	}
	keys, _ = store.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys after delete = %v", keys)
	}
}

func TestRecordStoreKeysRoundTrip(t *testing.T) {
	// The bug this pins: Keys() used to return the sanitized+hash file
	// stem, which Load() re-hashed into a nonexistent path. Keys() must
	// return the exact strings Load() accepts — including keys that
	// sanitize identically and keys that sanitize away entirely.
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := map[string]*Record{
		"a/b":           extractDemo(t, demoLib, "ab1.js"),
		"a_b":           extractDemo(t, "function F(){this.f=1;} var f=new F(); print(f.f);", "ab2.js"),
		"café/ünïcode":  extractDemo(t, "function G(){this.g=2;} var g=new G(); print(g.g);", "uni.js"),
		"plain.js":      extractDemo(t, "function H(){this.h=3;} var h=new H(); print(h.h);", "plain.js"),
		"with spaces !": extractDemo(t, "function K(){this.k=4;} var k=new K(); print(k.k);", "sp.js"),
	}
	var saved []string
	for key, rec := range recs {
		if err := store.Save(key, rec); err != nil {
			t.Fatalf("save %q: %v", key, err)
		}
		saved = append(saved, key)
	}
	sort.Strings(saved)

	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, saved) {
		t.Fatalf("Keys = %v, want the original keys %v", keys, saved)
	}
	for _, key := range keys {
		back, err := store.Load(key)
		if err != nil {
			t.Fatalf("Load(Keys()[i]=%q): %v", key, err)
		}
		if back == nil {
			t.Fatalf("Load(Keys()[i]=%q) found nothing: round trip broken", key)
		}
		if string(back.Encode()) != string(recs[key].Encode()) {
			t.Fatalf("Load(%q) returned a different record", key)
		}
	}
}

func TestRecordStoreKeysLegacyFallback(t *testing.T) {
	// Records written before the key sidecar existed are still listed —
	// by stem — instead of being hidden.
	store, err := OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := extractDemo(t, demoLib, "demo.js")
	if err := store.Save("legacy/key", rec); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(store.dir, store.fileStem("legacy/key")+keyExt)); err != nil {
		t.Fatal(err)
	}
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{store.fileStem("legacy/key")}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Keys = %v, want stem fallback %v", keys, want)
	}
}

func TestMergeRecordsCoversBothLibraries(t *testing.T) {
	libA := `
		function A(v) { this.va = v; this.wa = v + 1; }
		var as = [new A(1), new A(2), new A(3)];
		var sa = 0;
		for (var i = 0; i < as.length; i++) sa += as[i].va + as[i].wa;
		print('A', sa);
	`
	libB := `
		function B(v) { this.vb = v; this.wb = v * 2; }
		var bs = [new B(1), new B(2), new B(3)];
		var sb = 0;
		for (var i = 0; i < bs.length; i++) sb += bs[i].vb + bs[i].wb;
		print('B', sb);
	`
	cache := NewCodeCache()

	// Extract one record per library, in separate engines.
	engA := NewEngine(Options{Cache: cache})
	if err := engA.Run("a.js", libA); err != nil {
		t.Fatal(err)
	}
	recA := engA.ExtractRecord("a.js")

	engB := NewEngine(Options{Cache: cache})
	if err := engB.Run("b.js", libB); err != nil {
		t.Fatal(err)
	}
	recB := engB.ExtractRecord("b.js")

	merged, err := MergeRecords(recA, recB)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Label() != "a.js+b.js" {
		t.Fatalf("label = %q", merged.Label())
	}
	// The merged record must be encodable/decodable.
	if _, err := DecodeRecord(merged.Encode()); err != nil {
		t.Fatalf("merged record does not round trip: %v", err)
	}

	// An application loading both libraries benefits from the merged
	// record for both.
	app := NewEngine(Options{Cache: cache, Record: merged})
	if err := app.Run("a.js", libA); err != nil {
		t.Fatal(err)
	}
	savedAfterA := app.Stats().MissesSaved
	if err := app.Run("b.js", libB); err != nil {
		t.Fatal(err)
	}
	savedTotal := app.Stats().MissesSaved
	if savedAfterA == 0 {
		t.Fatal("merged record saved nothing for library A")
	}
	if savedTotal <= savedAfterA {
		t.Fatal("merged record saved nothing for library B")
	}
	if !strings.Contains(app.Output(), "A 15") || !strings.Contains(app.Output(), "B 18") {
		t.Fatalf("output = %q", app.Output())
	}

	// Compare against per-library baselines: the merged record must be at
	// least as effective for A as recA alone.
	solo := NewEngine(Options{Cache: cache, Record: recA})
	if err := solo.Run("a.js", libA); err != nil {
		t.Fatal(err)
	}
	if savedAfterA < solo.Stats().MissesSaved {
		t.Fatalf("merged record (%d saved) weaker than solo record (%d saved) for A",
			savedAfterA, solo.Stats().MissesSaved)
	}
}

func TestMergeRecordsErrors(t *testing.T) {
	if _, err := MergeRecords(); err == nil {
		t.Fatal("empty merge must fail")
	}
	if _, err := MergeRecords(nil); err == nil {
		t.Fatal("nil record must fail")
	}
	rec := extractDemo(t, demoLib, "demo.js")
	gEngine := NewEngine(Options{IncludeGlobals: true})
	if err := gEngine.Run("g.js", "var q = 1; print(q);"); err != nil {
		t.Fatal(err)
	}
	gRec := gEngine.ExtractRecord("g.js")
	if _, err := MergeRecords(rec, gRec); err == nil {
		t.Fatal("mixed IncludesGlobals must fail")
	}
	// Single-record merge is the identity.
	same, err := MergeRecords(rec)
	if err != nil || same == nil {
		t.Fatal(err)
	}
	if string(same.Encode()) != string(rec.Encode()) {
		t.Fatal("single merge must be identity")
	}
}

func TestMergedRecordMatchesCombinedRun(t *testing.T) {
	// Merging per-library records approximates extracting from a run that
	// loaded both libraries; effectiveness should be comparable.
	w := NewEngine(Options{})
	for _, s := range []struct{ name, src string }{
		{"x.js", "function X(v){this.x=v;} var xs=[new X(1),new X(2)]; var t=xs[0].x+xs[1].x; print('x',t);"},
		{"y.js", "function Y(v){this.y=v;} var ys=[new Y(1),new Y(2)]; var u=ys[0].y+ys[1].y; print('y',u);"},
	} {
		if err := w.Run(s.name, s.src); err != nil {
			t.Fatal(err)
		}
	}
	combined := w.ExtractRecord("both")

	e1 := NewEngine(Options{})
	if err := e1.Run("x.js", "function X(v){this.x=v;} var xs=[new X(1),new X(2)]; var t=xs[0].x+xs[1].x; print('x',t);"); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(Options{})
	if err := e2.Run("y.js", "function Y(v){this.y=v;} var ys=[new Y(1),new Y(2)]; var u=ys[0].y+ys[1].y; print('y',u);"); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeRecords(e1.ExtractRecord("x.js"), e2.ExtractRecord("y.js"))
	if err != nil {
		t.Fatal(err)
	}
	cs := combined.Stats()
	ms := merged.Stats()
	if ms.TriggeringSites != cs.TriggeringSites {
		t.Fatalf("triggering sites: merged %d vs combined %d", ms.TriggeringSites, cs.TriggeringSites)
	}
	if ms.DependentSlots != cs.DependentSlots {
		t.Fatalf("dependent slots: merged %d vs combined %d", ms.DependentSlots, cs.DependentSlots)
	}
}
