package ricjs

import (
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ricjs/internal/ric"
)

// MergeRecords combines records extracted from separate runs — typically
// one per library — into a single record covering all of them. Hidden
// class IDs are renumbered; builtin entries unify by name. This is the
// sharing capability the paper contrasts with heap snapshots (§9): a
// library's record serves every application that loads the library.
func MergeRecords(records ...*Record) (*Record, error) {
	inner := make([]*ric.Record, len(records))
	for i, r := range records {
		if r == nil {
			return nil, fmt.Errorf("ricjs: nil record at index %d", i)
		}
		inner[i] = r.r
	}
	merged, err := ric.Merge(inner...)
	if err != nil {
		return nil, err
	}
	return &Record{r: merged}, nil
}

// FS abstracts the filesystem operations a RecordStore performs. The
// production implementation is the OS filesystem; fault-injection
// harnesses substitute one that fails on demand (ENOSPC on save, EIO on
// load, rename failure) to prove the store degrades instead of wedging.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	// WriteTemp creates a uniquely named file in dir from pattern (as
	// os.CreateTemp), writes data, and returns the file's path.
	WriteTemp(dir, pattern string, data []byte) (string, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
}

// NewOSFS returns the production FS backed by the real filesystem, for
// fault wrappers that need a base to delegate to.
func NewOSFS() FS { return osFS{} }

// osFS is the production FS backed by the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }

func (osFS) WriteTemp(dir, pattern string, data []byte) (string, error) {
	tmp, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return "", err
	}
	return name, nil
}

// RecordStore persists ICRecords in a directory, one file per key, the
// way a browser persists its code cache between sessions. Keys are
// caller-chosen names (typically the script name); they are sanitized
// into file names with a short hash of the raw key appended, so distinct
// keys never collide on a file (plain sanitization maps both "a/b" and
// "a_b" to "a_b").
type RecordStore struct {
	dir string
	fs  FS
}

// OpenRecordStore creates (if necessary) and opens a record store rooted
// at dir on the real filesystem.
func OpenRecordStore(dir string) (*RecordStore, error) {
	return OpenRecordStoreFS(dir, osFS{})
}

// OpenRecordStoreFS opens a record store over an explicit filesystem;
// fault harnesses use it to inject I/O errors.
func OpenRecordStoreFS(dir string, fsys FS) (*RecordStore, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ricjs: open record store: %w", err)
	}
	return &RecordStore{dir: dir, fs: fsys}, nil
}

// recordExt is the file extension of stored records; quarantineExt is
// appended to it for records set aside as corrupt; keyExt marks the
// sidecar file holding a record's original (unsanitized) key, which lets
// Keys() report the exact strings Load and Delete accept.
const (
	recordExt     = ".ric"
	quarantineExt = ".bad"
	keyExt        = ".key"
)

// fileStem maps a key to its extension-less file name: the sanitized key
// plus a short hash of the raw key (collision insurance for keys that
// sanitize identically).
func (s *RecordStore) fileStem(key string) string {
	var b strings.Builder
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	name := b.String()
	if name == "" {
		name = "record"
	}
	return fmt.Sprintf("%s-%08x", name, crc32.ChecksumIEEE([]byte(key)))
}

// path maps a key to its file path.
func (s *RecordStore) path(key string) string {
	return filepath.Join(s.dir, s.fileStem(key)+recordExt)
}

// Save persists a record under a key, replacing any previous record. The
// write is atomic (temp file + rename), so a crashed writer never leaves
// a truncated record for the next session to trip over.
func (s *RecordStore) Save(key string, record *Record) error {
	return s.SaveBytes(key, record.Encode())
}

// SaveBytes persists raw encoded bytes under a key without decoding
// them. Tooling and fault harnesses use it to plant exactly the bytes a
// failed or interrupted writer would leave; production callers should
// prefer Save.
func (s *RecordStore) SaveBytes(key string, data []byte) error {
	// The key sidecar goes first: an orphaned sidecar (record rename fails
	// below) is harmless and idempotent — its content is determined by the
	// stem — whereas a record without a sidecar can only be listed by stem.
	if err := s.writeKeySidecar(key); err != nil {
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	tmpName, err := s.fs.WriteTemp(s.dir, "ric-*", data)
	if err != nil {
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	if err := s.fs.Rename(tmpName, s.path(key)); err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	return nil
}

// writeKeySidecar persists the raw key next to its record file (atomic,
// like the record itself), so Keys() can return the original key instead
// of the hash-suffixed file stem.
func (s *RecordStore) writeKeySidecar(key string) error {
	tmpName, err := s.fs.WriteTemp(s.dir, "key-*", []byte(key))
	if err != nil {
		return err
	}
	dst := filepath.Join(s.dir, s.fileStem(key)+keyExt)
	if err := s.fs.Rename(tmpName, dst); err != nil {
		s.fs.Remove(tmpName)
		return err
	}
	return nil
}

// Load reads the record stored under a key. A missing key returns
// (nil, nil): no record yet is the normal cold-start case, not an error.
// Corrupt records (including records in a superseded wire format) are
// quarantined — renamed to <name>.ric.bad for operator inspection — and
// reported as absent, so one bad write can never wedge future sessions
// while the evidence of what went wrong is preserved.
func (s *RecordStore) Load(key string) (*Record, error) {
	rec, _, err := s.LoadStatus(key)
	return rec, err
}

// LoadStatus is Load with quarantine visibility: quarantined reports that
// this call found a corrupt record and set it aside. Load swallows that
// fact by design (a quarantine is self-healing, not an error), but
// fleet-level callers — the SessionPool — must count it, or a store
// silently eating .ric.bad files is invisible in aggregate stats.
func (s *RecordStore) LoadStatus(key string) (rec *Record, quarantined bool, err error) {
	data, err := s.fs.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ricjs: load record: %w", err)
	}
	rec, derr := DecodeRecord(data)
	if derr != nil {
		// Self-heal: set the corrupt record aside; the next Initial run
		// regenerates it. A quarantine that itself fails leaves the poison
		// in place — every future Load would re-decode and re-fail — so
		// that failure is surfaced instead of swallowed.
		if qerr := s.Quarantine(key); qerr != nil {
			return nil, false, fmt.Errorf("ricjs: load record: corrupt record survived: %w", qerr)
		}
		return nil, true, nil
	}
	return rec, false, nil
}

// Quarantine moves the record stored under a key (if any) to its
// quarantine name. Callers use it when a record that decodes fine still
// proves bad in use — fails bytecode validation or degrades a run — so
// the poisoned record cannot reach the next session.
func (s *RecordStore) Quarantine(key string) error {
	p := s.path(key)
	err := s.fs.Rename(p, p+quarantineExt)
	if err == nil || os.IsNotExist(err) {
		return nil
	}
	// Last resort: a record that can be neither quarantined nor left in
	// place is removed; losing the forensic copy beats letting the poison
	// persist. Only when the remove fails too — the poison file survives
	// and will be re-read by every future Load — is an error returned.
	if rerr := s.fs.Remove(p); rerr != nil && !os.IsNotExist(rerr) {
		return fmt.Errorf("ricjs: quarantine record: rename: %v; remove: %w", err, rerr)
	}
	return nil
}

// Quarantined lists the file names of quarantined records, sorted, so
// operators can inspect what went wrong.
func (s *RecordStore) Quarantined() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ricjs: list quarantined records: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt+quarantineExt) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes the record stored under a key (and its key sidecar),
// if any.
func (s *RecordStore) Delete(key string) error {
	err := s.fs.Remove(s.path(key))
	if rerr := s.fs.Remove(filepath.Join(s.dir, s.fileStem(key)+keyExt)); rerr != nil {
		// The sidecar is advisory; its absence only degrades Keys() to the
		// stem fallback, so its removal failure never masks the record's.
		_ = rerr
	}
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys lists the original keys of the stored records, sorted, such that
// Load(Keys()[i]) round-trips for every entry. Quarantined records are
// excluded. Records written by older store versions (no key sidecar) are
// listed by their file stem — the pre-sidecar behaviour — which may not
// resolve through Load for keys that needed sanitizing.
func (s *RecordStore) Keys() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ricjs: list records: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt) {
			continue
		}
		stem := strings.TrimSuffix(name, recordExt)
		if raw, rerr := s.fs.ReadFile(filepath.Join(s.dir, stem+keyExt)); rerr == nil && len(raw) > 0 {
			keys = append(keys, string(raw))
		} else {
			keys = append(keys, stem)
		}
	}
	sort.Strings(keys)
	return keys, nil
}
