package ricjs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ricjs/internal/ric"
)

// MergeRecords combines records extracted from separate runs — typically
// one per library — into a single record covering all of them. Hidden
// class IDs are renumbered; builtin entries unify by name. This is the
// sharing capability the paper contrasts with heap snapshots (§9): a
// library's record serves every application that loads the library.
func MergeRecords(records ...*Record) (*Record, error) {
	inner := make([]*ric.Record, len(records))
	for i, r := range records {
		if r == nil {
			return nil, fmt.Errorf("ricjs: nil record at index %d", i)
		}
		inner[i] = r.r
	}
	merged, err := ric.Merge(inner...)
	if err != nil {
		return nil, err
	}
	return &Record{r: merged}, nil
}

// RecordStore persists ICRecords in a directory, one file per key, the
// way a browser persists its code cache between sessions. Keys are
// caller-chosen names (typically the script name); they are sanitized
// into file names.
type RecordStore struct {
	dir string
}

// OpenRecordStore creates (if necessary) and opens a record store rooted
// at dir.
func OpenRecordStore(dir string) (*RecordStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ricjs: open record store: %w", err)
	}
	return &RecordStore{dir: dir}, nil
}

// recordExt is the file extension of stored records.
const recordExt = ".ric"

// path maps a key to its file path.
func (s *RecordStore) path(key string) string {
	var b strings.Builder
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	name := b.String()
	if name == "" {
		name = "record"
	}
	return filepath.Join(s.dir, name+recordExt)
}

// Save persists a record under a key, replacing any previous record. The
// write is atomic (temp file + rename), so a crashed writer never leaves
// a truncated record for the next session to trip over.
func (s *RecordStore) Save(key string, record *Record) error {
	data := record.Encode()
	tmp, err := os.CreateTemp(s.dir, "ric-*")
	if err != nil {
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ricjs: save record: %w", err)
	}
	return nil
}

// Load reads the record stored under a key. A missing key returns
// (nil, nil): no record yet is the normal cold-start case, not an error.
// Corrupt records are deleted and reported as absent, so one bad write
// can never wedge future sessions.
func (s *RecordStore) Load(key string) (*Record, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ricjs: load record: %w", err)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		// Self-heal: drop the corrupt record; the next Initial run will
		// regenerate it.
		os.Remove(s.path(key))
		return nil, nil
	}
	return rec, nil
}

// Delete removes the record stored under a key, if any.
func (s *RecordStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys lists the stored record keys (file names without extension),
// sorted.
func (s *RecordStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ricjs: list records: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordExt) {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, recordExt))
	}
	sort.Strings(keys)
	return keys, nil
}
