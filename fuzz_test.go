package ricjs_test

import (
	"os"
	"path/filepath"
	"testing"

	"ricjs"
)

// fuzzLib is the workload every FuzzReuseRun iteration executes; the
// committed corpus under testdata/ holds records extracted from it (and
// corrupted variants), so coverage starts at the interesting boundary:
// records that decode but lie.
const fuzzLib = `
	function Point(x, y) { this.x = x; this.y = y; }
	Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
	var pts = [];
	for (var i = 0; i < 8; i++) pts.push(new Point(i, i + 1));
	var total = 0;
	for (var j = 0; j < pts.length; j++) total += pts[j].norm2();
	var bag = {};
	bag['k' + 0] = total;
	print('total', bag.k0);
`

// FuzzReuseRun feeds arbitrary bytes to an engine as its persisted
// record and runs the workload: no input may panic the engine or change
// the program's output relative to a conventional run.
func FuzzReuseRun(f *testing.F) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".ric" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("RICREC\x03"))

	cache := ricjs.NewCodeCache()
	conv := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := conv.Run("lib.js", fuzzLib); err != nil {
		f.Fatal(err)
	}
	want := conv.Output()

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := ricjs.NewEngine(ricjs.Options{Cache: cache, RecordBytes: data})
		if err := eng.Run("lib.js", fuzzLib); err != nil {
			t.Fatalf("reuse run failed: %v", err)
		}
		if got := eng.Output(); got != want {
			t.Fatalf("reuse output %q != conventional %q", got, want)
		}
		degraded, _ := eng.Degraded()
		if degraded != (eng.Stats().DegradedRuns > 0) {
			t.Fatal("Degraded() and Stats().DegradedRuns disagree")
		}
	})
}
