package ricjs_test

import (
	"bytes"
	"strings"
	"testing"

	"ricjs"
	"ricjs/internal/bench"
	"ricjs/internal/faultinject"
)

const faultLib = `
	function Point(x, y) { this.x = x; this.y = y; }
	Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
	var pts = [];
	for (var i = 0; i < 40; i++) pts.push(new Point(i, i + 1));
	var total = 0;
	for (var j = 0; j < pts.length; j++) total += pts[j].norm2();
	print('total', total);
`

func extractFaultRecord(t *testing.T, cache *ricjs.CodeCache) *ricjs.Record {
	t.Helper()
	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := initial.Run("lib.js", faultLib); err != nil {
		t.Fatal(err)
	}
	return initial.ExtractRecord("lib.js")
}

func conventionalOutput(t *testing.T, cache *ricjs.CodeCache) string {
	t.Helper()
	conv := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := conv.Run("lib.js", faultLib); err != nil {
		t.Fatal(err)
	}
	return conv.Output()
}

// TestFaultSweepDifferential is the acceptance harness: every workload ×
// every fault mode must uphold the robustness trio — no panic escapes,
// output byte-identical to a conventional run, poisoned records never
// reach the next session.
func TestFaultSweepDifferential(t *testing.T) {
	trials, err := bench.FaultSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) == 0 {
		t.Fatal("fault sweep produced no trials")
	}
	degradedSomewhere := false
	for _, trial := range trials {
		trial := trial
		t.Run(trial.Library+"/"+string(trial.Mode), func(t *testing.T) {
			if trial.Panicked {
				t.Errorf("panic escaped: %s", trial.Err)
			}
			if trial.Err != "" && !trial.Panicked {
				t.Errorf("unexpected error: %s", trial.Err)
			}
			if !trial.OutputMatch {
				t.Error("faulted reuse output differs from conventional run")
			}
			if !trial.PoisonCleared {
				t.Error("faulted record survived to the next session")
			}
		})
		if trial.Degraded {
			degradedSomewhere = true
		}
	}
	if !degradedSomewhere {
		t.Error("no trial degraded; the sweep is not exercising the fallback path")
	}
}

// TestEngineDegradesOnDecodeFailure proves the decode phase of the
// degradation pipeline: undecodable record bytes must not fail engine
// construction or the run — the engine starts conventionally and says so.
func TestEngineDegradesOnDecodeFailure(t *testing.T) {
	cache := ricjs.NewCodeCache()
	want := conventionalOutput(t, cache)

	eng := ricjs.NewEngine(ricjs.Options{Cache: cache, RecordBytes: []byte("not a record")})
	if err := eng.Run("lib.js", faultLib); err != nil {
		t.Fatal(err)
	}
	degraded, cause := eng.Degraded()
	if !degraded {
		t.Fatal("engine with undecodable record bytes must degrade")
	}
	if cause == nil || cause.Phase != "decode" || !cause.RecordAttributable {
		t.Fatalf("degradation cause = %+v, want record-attributable decode failure", cause)
	}
	if got := eng.Stats().DegradedRuns; got != 1 {
		t.Fatalf("DegradedRuns = %d, want 1", got)
	}
	if eng.Output() != want {
		t.Fatalf("degraded output %q != conventional %q", eng.Output(), want)
	}
}

// TestEngineRecoversFromHookPanic proves the recovery boundary: an
// invariant violation inside the reuse machinery mid-run becomes a
// degradation, not a crash, and the retried run matches the conventional
// output.
func TestEngineRecoversFromHookPanic(t *testing.T) {
	cache := ricjs.NewCodeCache()
	rec := extractFaultRecord(t, cache)
	want := conventionalOutput(t, cache)

	eng := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: rec})
	eng.VM().SetHooks(&faultinject.PanicHooks{Countdown: 2})
	if err := eng.Run("lib.js", faultLib); err != nil {
		t.Fatalf("run after injected panic: %v", err)
	}
	degraded, cause := eng.Degraded()
	if !degraded {
		t.Fatal("engine must degrade after an injected hook panic")
	}
	if cause == nil || !cause.RecordAttributable {
		t.Fatalf("degradation cause = %+v, want record-attributable", cause)
	}
	if got := eng.Stats().DegradedRuns; got != 1 {
		t.Fatalf("DegradedRuns = %d, want 1", got)
	}
	if eng.Output() != want {
		t.Fatalf("degraded output %q != conventional %q", eng.Output(), want)
	}
}

// TestDegradedEngineStdoutNoDuplicates proves output staging: with an
// external Stdout, a mid-session degradation must not re-deliver output
// the user already received from earlier scripts, and the final bytes
// must equal a conventional session's.
func TestDegradedEngineStdoutNoDuplicates(t *testing.T) {
	script1 := `function A(v) { this.a = v; } var xs = [new A(1), new A(2)]; print('one', xs[0].a + xs[1].a);`
	script2 := `function B(v) { this.b = v; } var ys = [new B(3), new B(4)]; print('two', ys[0].b + ys[1].b);`

	cache := ricjs.NewCodeCache()
	initial := ricjs.NewEngine(ricjs.Options{Cache: cache})
	for _, s := range []struct{ name, src string }{{"one.js", script1}, {"two.js", script2}} {
		if err := initial.Run(s.name, s.src); err != nil {
			t.Fatal(err)
		}
	}
	rec := initial.ExtractRecord("both")

	var convOut bytes.Buffer
	conv := ricjs.NewEngine(ricjs.Options{Cache: cache, Stdout: &convOut})
	for _, s := range []struct{ name, src string }{{"one.js", script1}, {"two.js", script2}} {
		if err := conv.Run(s.name, s.src); err != nil {
			t.Fatal(err)
		}
	}

	var out bytes.Buffer
	eng := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: rec, Stdout: &out})
	if err := eng.Run("one.js", script1); err != nil {
		t.Fatal(err)
	}
	// Poison the second script's run: the hooks panic on the next
	// hidden-class creation, forcing a mid-session degradation.
	eng.VM().SetHooks(&faultinject.PanicHooks{})
	if err := eng.Run("two.js", script2); err != nil {
		t.Fatal(err)
	}
	if degraded, _ := eng.Degraded(); !degraded {
		t.Fatal("second script must have degraded the engine")
	}
	if out.String() != convOut.String() {
		t.Fatalf("staged output %q != conventional %q", out.String(), convOut.String())
	}
	if n := strings.Count(out.String(), "one"); n != 1 {
		t.Fatalf("first script's output delivered %d times, want exactly once", n)
	}
}

// TestRecordStoreUnderIOFaults drives the store through injected
// filesystem failures: a failed save must leave the previous record
// intact, and a read error must surface as an error, never as silent
// quarantine of a healthy file.
func TestRecordStoreUnderIOFaults(t *testing.T) {
	cache := ricjs.NewCodeCache()
	rec := extractFaultRecord(t, cache)
	dir := t.TempDir()

	healthy, err := ricjs.OpenRecordStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Save("lib.js", rec); err != nil {
		t.Fatal(err)
	}

	t.Run("enospc-on-save", func(t *testing.T) {
		ffs := &faultinject.FaultFS{Base: ricjs.NewOSFS(), WriteErr: faultinject.ErrNoSpace}
		store, err := ricjs.OpenRecordStoreFS(dir, ffs)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save("lib.js", rec); err == nil {
			t.Fatal("save over a full disk must fail")
		}
		if back, err := healthy.Load("lib.js"); err != nil || back == nil {
			t.Fatalf("failed save must leave the old record intact, got (%v, %v)", back, err)
		}
	})

	t.Run("rename-failure-on-save", func(t *testing.T) {
		ffs := &faultinject.FaultFS{Base: ricjs.NewOSFS(), RenameErr: faultinject.ErrIO}
		store, err := ricjs.OpenRecordStoreFS(dir, ffs)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save("lib.js", rec); err == nil {
			t.Fatal("save with failing rename must fail")
		}
		if back, err := healthy.Load("lib.js"); err != nil || back == nil {
			t.Fatalf("failed save must leave the old record intact, got (%v, %v)", back, err)
		}
	})

	t.Run("eio-on-load", func(t *testing.T) {
		ffs := &faultinject.FaultFS{Base: ricjs.NewOSFS(), ReadErr: faultinject.ErrIO}
		store, err := ricjs.OpenRecordStoreFS(dir, ffs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load("lib.js"); err == nil {
			t.Fatal("load through a failing disk must surface the error")
		}
		// The healthy file must still be there — an I/O error is not
		// corruption and must not trigger quarantine.
		if back, err := healthy.Load("lib.js"); err != nil || back == nil {
			t.Fatalf("record lost after read error, got (%v, %v)", back, err)
		}
	})
}

// TestQuarantineFailureSurfaces pins the corrupt-record worst case: when
// the quarantine rename AND the last-resort remove both fail, the poison
// file survives and every future Load would re-decode it — so Load must
// return an error instead of silently reporting the record as absent.
func TestQuarantineFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	healthy, err := ricjs.OpenRecordStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.SaveBytes("lib.js", []byte("RICREC\xffgarbage")); err != nil {
		t.Fatal(err)
	}

	// Both escape hatches blocked: the poison cannot be moved or removed.
	ffs := &faultinject.FaultFS{
		Base:      ricjs.NewOSFS(),
		RenameErr: faultinject.ErrIO,
		RemoveErr: faultinject.ErrIO,
	}
	wedged, err := ricjs.OpenRecordStoreFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wedged.Load("lib.js"); err == nil {
		t.Fatal("surviving poison must surface as a Load error, not silence")
	}

	// Remove works even though rename is broken: the poison is cleared
	// (forensic copy sacrificed), so the load degrades to absent cleanly.
	ffs.RemoveErr = nil
	if rec, err := wedged.Load("lib.js"); err != nil || rec != nil {
		t.Fatalf("removable poison must load as absent, got (%v, %v)", rec, err)
	}
	if rec, err := healthy.Load("lib.js"); err != nil || rec != nil {
		t.Fatalf("poison file must be gone, got (%v, %v)", rec, err)
	}
}
