package ricjs

import (
	"testing"

	"ricjs/internal/workloads"
)

// TestAllWorkloadsEquivalentAcrossModes is the repository's golden
// correctness gate: for every library of the evaluation, the Initial run,
// the Conventional Reuse run, and the RIC Reuse run must print identical
// output — RIC is an optimization, never a semantic change (the paper's
// central correctness claim).
func TestAllWorkloadsEquivalentAcrossModes(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source()
			cache := NewCodeCache()

			initial := NewEngine(Options{Cache: cache})
			if err := initial.Run(p.Script, src); err != nil {
				t.Fatal(err)
			}
			record := initial.ExtractRecord(p.Name)

			conv := NewEngine(Options{Cache: cache})
			if err := conv.Run(p.Script, src); err != nil {
				t.Fatal(err)
			}
			reuse := NewEngine(Options{Cache: cache, Record: record})
			if err := reuse.Run(p.Script, src); err != nil {
				t.Fatal(err)
			}

			if initial.Output() != conv.Output() {
				t.Errorf("conventional output diverged:\n%q\n%q", initial.Output(), conv.Output())
			}
			if initial.Output() != reuse.Output() {
				t.Errorf("RIC output diverged:\n%q\n%q", initial.Output(), reuse.Output())
			}

			is, cs, rs := initial.Stats(), conv.Stats(), reuse.Stats()
			// Determinism: Initial and Conventional runs are identical.
			if is.ICMisses != cs.ICMisses || is.TotalInstr() != cs.TotalInstr() {
				t.Errorf("conventional run not deterministic: %+v vs %+v", is, cs)
			}
			// Effectiveness: RIC must avert misses on every library.
			if rs.MissesSaved == 0 {
				t.Error("RIC averted no misses")
			}
			if rs.ICMisses >= cs.ICMisses {
				t.Errorf("RIC misses %d !< conventional %d", rs.ICMisses, cs.ICMisses)
			}
			if rs.TotalInstr() >= cs.TotalInstr() {
				t.Errorf("RIC instructions %d !< conventional %d", rs.TotalInstr(), cs.TotalInstr())
			}
			// Conservation: averted misses equal the miss delta.
			if cs.ICMisses-rs.ICMisses != rs.MissesSaved {
				t.Errorf("miss accounting broken: conv %d, ric %d, averted %d",
					cs.ICMisses, rs.ICMisses, rs.MissesSaved)
			}
		})
	}
}

// TestAllWorkloadsSnapshotEquivalence verifies that snapshot restoration
// reconstructs each library's observable exported state.
func TestAllWorkloadsSnapshotEquivalence(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source()
			cache := NewCodeCache()

			initial := NewEngine(Options{Cache: cache})
			if err := initial.Run(p.Script, src); err != nil {
				t.Fatal(err)
			}
			snap, err := initial.CaptureSnapshot(p.Name)
			if err != nil {
				t.Fatal(err)
			}

			target := NewEngine(Options{Cache: cache})
			if err := target.RestoreSnapshot(snap, map[string]string{p.Script: src}); err != nil {
				t.Fatal(err)
			}
			// Probe the restored API object: the initialization checksum
			// must match what execution produced, without executing.
			probe := "print(window." + sanitized(p.Name) + ".acc, window." + sanitized(p.Name) + ".ready);"
			if err := target.Run("probe.js", probe); err != nil {
				t.Fatal(err)
			}
			probeInit := NewEngine(Options{Cache: cache})
			if err := probeInit.Run(p.Script, src); err != nil {
				t.Fatal(err)
			}
			if err := probeInit.Run("probe.js", probe); err != nil {
				t.Fatal(err)
			}
			// Compare just the probe line (the executed engine also printed
			// the library's own line).
			restoredLine := target.Output()
			executedOut := probeInit.Output()
			if len(executedOut) < len(restoredLine) ||
				executedOut[len(executedOut)-len(restoredLine):] != restoredLine {
				t.Errorf("restored state diverges:\nrestored probe: %qexecuted tail: %q",
					restoredLine, executedOut)
			}
		})
	}
}

// sanitized mirrors the workload generator's namespace naming.
func sanitized(name string) string {
	out := make([]rune, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
