package ricjs

import (
	"testing"

	"ricjs/internal/analysis"
	"ricjs/internal/bytecode"
	"ricjs/internal/objects"
	"ricjs/internal/parser"
	"ricjs/internal/ric"
	"ricjs/internal/vm"
	"ricjs/internal/workloads"
)

func compileWorkload(t *testing.T, name, src string) *bytecode.Program {
	t.Helper()
	ast, err := parser.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := bytecode.Compile(ast)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestTypedClaimsSoundOnAllWorkloads is the differential soundness gate
// for typed-shape inference, run over every library of the evaluation:
//
//  1. offline: the claims attached at extraction must pass VerifyTyped's
//     independent recomputation (what riclint's fourth layer checks);
//  2. store-side: during a Reuse run that applies the claims, no concrete
//     store may place a value a claimed slot type does not admit, and no
//     claim may ever be deoptimized away (a truthful record's claims hold
//     for the whole run);
//  3. differential: a Reuse run with the typed record must be
//     byte-identical — output and every instruction/accounting counter —
//     to one with the claims stripped, except for the typed-hit gauge,
//     which must be nonzero with claims and zero without. The typed fast
//     path is an observation change, never a semantic or accounting one.
//
// Any concrete violation of a claimed slot type is a hard failure here.
func TestTypedClaimsSoundOnAllWorkloads(t *testing.T) {
	for _, p := range workloads.Profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source()
			prog := compileWorkload(t, p.Script, src)
			res := analysis.Analyze(prog)

			v0 := vm.New(vm.Options{})
			if _, err := v0.RunProgram(prog); err != nil {
				t.Fatal(err)
			}
			rec := ric.Extract(v0, p.Script, ric.Config{})
			rec.AttachTypedShapes(res)
			if rec.Stats.TypedSlotClaims == 0 {
				t.Fatal("extraction attached no typed claims; the gate is vacuous")
			}
			// Layer 1: the offline recomputation accepts every attached claim.
			if err := rec.VerifyTyped(res); err != nil {
				t.Fatalf("extraction attached a claim its own analysis rejects: %v", err)
			}

			runReuse := func(r *ric.Record, obs func(*objects.Object)) *vm.VM {
				reuser := ric.NewReuser(r, nil, nil)
				v := vm.New(vm.Options{Hooks: reuser, StoreObserver: obs})
				reuser.Attach(v)
				if _, err := v.RunProgram(prog); err != nil {
					t.Fatal(err)
				}
				return v
			}

			// Layer 2: observe every named store of a claim-applying run.
			// Claims are applied when the Reuser validates a hidden class,
			// which can happen after the observer first sees it — so a claim
			// appearing (none -> typed) is benign. But the only way a claim
			// ever goes away is the store guard clearing one a value just
			// violated, so typed -> none (or typed -> other) is a soundness
			// failure, and every live claim must admit the receiver's
			// current slot value.
			seen := make(map[*objects.HiddenClass][]objects.SlotType)
			stores := 0
			observed := runReuse(rec, func(o *objects.Object) {
				stores++
				hc := o.HC()
				snap, ok := seen[hc]
				if !ok {
					fields := hc.Fields()
					snap = make([]objects.SlotType, len(fields))
					for off := range fields {
						snap[off] = hc.SlotType(off)
					}
					seen[hc] = snap
				}
				for off, want := range snap {
					got := hc.SlotType(off)
					if got != want {
						if want != objects.SlotTypeNone {
							t.Errorf("claim on %q slot %d was deoptimized %s -> %s: a store violated it",
								hc.FieldAt(off), off, want, got)
						}
						snap[off] = got // lazy validation applied a claim (or report a clear once)
					}
					if got == objects.SlotTypeNone {
						continue
					}
					if val, ok, _ := o.GetOwn(hc.FieldAt(off)); ok && !got.Admits(val) {
						t.Errorf("slot %q claims %s but holds a value it does not admit",
							hc.FieldAt(off), got)
					}
				}
			})
			if stores == 0 {
				t.Fatal("store observer saw no stores; the gate is vacuous")
			}
			if observed.Prof.Snapshot().TypedFastHits == 0 {
				t.Fatal("observed reuse run served no typed fast hits")
			}

			// Layer 3: typed vs stripped runs are byte-identical outside the
			// typed-hit gauge.
			stripped, err := ric.Decode(rec.Encode())
			if err != nil {
				t.Fatal(err)
			}
			stripped.TypedSlots = nil
			stripped.Stats.TypedSlotClaims = 0

			typed := runReuse(rec, nil)
			plain := runReuse(stripped, nil)
			if typed.Output() != plain.Output() {
				t.Errorf("typed run output diverged:\n%q\n%q", typed.Output(), plain.Output())
			}
			ts, ps := typed.Prof.Snapshot(), plain.Prof.Snapshot()
			if ts.TypedFastHits == 0 {
				t.Error("typed reuse run served no typed fast hits")
			}
			if ps.TypedFastHits != 0 {
				t.Errorf("stripped reuse run served %d typed hits", ps.TypedFastHits)
			}
			ts.TypedFastHits, ps.TypedFastHits = 0, 0
			if ts != ps {
				t.Errorf("typed fast path changed accounting:\ntyped:    %+v\nstripped: %+v", ts, ps)
			}
		})
	}
}
