package ricjs_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ricjs"
)

// poolLib renders a small library keyed by an index: distinct constructor
// names, field values, and printed output per key, with enough object
// traffic to produce real IC state to extract and reuse.
func poolLib(i int) (key, script, src string) {
	key = fmt.Sprintf("lib%d", i)
	script = fmt.Sprintf("lib%d.js", i)
	src = fmt.Sprintf(`
		function C%[1]d(v) { this.a = v; this.b = v + %[1]d; this.tag = %[1]d; }
		C%[1]d.prototype.sum = function () { return this.a + this.b; };
		var items%[1]d = [];
		for (var i = 0; i < 25; i++) items%[1]d.push(new C%[1]d(i));
		var total%[1]d = 0;
		for (var j = 0; j < items%[1]d.length; j++) total%[1]d += items%[1]d[j].sum();
		print('lib%[1]d total', total%[1]d);
	`, i)
	return key, script, src
}

// sequentialOutputs runs every workload once on a plain conventional
// engine, giving the byte-exact reference output per key.
func sequentialOutputs(t *testing.T, nkeys int) map[string]string {
	t.Helper()
	want := make(map[string]string, nkeys)
	for i := 0; i < nkeys; i++ {
		key, script, src := poolLib(i)
		eng := ricjs.NewEngine(ricjs.Options{})
		if err := eng.Run(script, src); err != nil {
			t.Fatal(err)
		}
		want[key] = eng.Output()
	}
	return want
}

// TestSessionPoolStress is the acceptance stress: >= 32 concurrent
// sessions over >= 4 shared record keys, exactly one extraction per cold
// key (single-flight, verified by pool stats), and byte-identical
// per-session output to a sequential conventional run. Run under -race it
// also proves the shared decoded records are data-race free.
func TestSessionPoolStress(t *testing.T) {
	const (
		nkeys    = 6
		sessions = 48
	)
	want := sequentialOutputs(t, nkeys)

	pool := ricjs.NewSessionPool(ricjs.PoolOptions{WaitForRecord: true})
	results := make([]*ricjs.SessionResult, sessions)
	errs := make([]error, sessions)
	keys := make([]string, sessions)

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		key, script, src := poolLib(s % nkeys)
		keys[s] = key
		wg.Add(1)
		go func(s int, req ricjs.SessionRequest) {
			defer wg.Done()
			results[s], errs[s] = pool.Serve(req)
		}(s, ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		})
	}
	wg.Wait()

	initials := 0
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		res := results[s]
		if res.Output != want[keys[s]] {
			t.Fatalf("session %d (%s): output %q, sequential run produced %q",
				s, keys[s], res.Output, want[keys[s]])
		}
		if res.Degraded {
			t.Fatalf("session %d (%s) degraded", s, keys[s])
		}
		if res.Mode == ricjs.SessionInitial {
			initials++
		}
	}

	stats := pool.Stats()
	if stats.Sessions != sessions {
		t.Fatalf("Sessions = %d, want %d", stats.Sessions, sessions)
	}
	if stats.Extractions != nkeys {
		t.Fatalf("Extractions = %d, want exactly %d (single-flight)", stats.Extractions, nkeys)
	}
	if initials != nkeys {
		t.Fatalf("%d SessionInitial results, want %d", initials, nkeys)
	}
	if stats.ReuseHits != sessions-nkeys {
		t.Fatalf("ReuseHits = %d, want %d (every non-extractor reuses)", stats.ReuseHits, sessions-nkeys)
	}
	if stats.ConventionalRuns != 0 {
		t.Fatalf("ConventionalRuns = %d, want 0 with WaitForRecord", stats.ConventionalRuns)
	}
	if stats.RecordsDecoded() != nkeys {
		t.Fatalf("RecordsDecoded = %d, want %d (one decode per key)", stats.RecordsDecoded(), nkeys)
	}
	if got := pool.CachedRecords(); got != nkeys {
		t.Fatalf("CachedRecords = %d, want %d", got, nkeys)
	}
	if stats.DegradedSessions != 0 {
		t.Fatalf("DegradedSessions = %d, want 0", stats.DegradedSessions)
	}
}

// TestSessionPoolQuickenedStress proves quickening isolation under the
// pool: many concurrent sessions share one code cache (so the canonical
// compiled []uint32 for each key is a single shared object) with
// quickening and fusion on, and every session's output must still be
// byte-identical to a sequential quickening-off run. Each VM quickens a
// private executable copy, so under -race this also proves sessions never
// observe each other's rewrites. Every session must actually execute
// quickened instructions, or the isolation claim is vacuous.
func TestSessionPoolQuickenedStress(t *testing.T) {
	const (
		nkeys    = 4
		sessions = 40
	)
	want := sequentialOutputs(t, nkeys)

	cache := ricjs.NewCodeCache()
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{
		Cache:         cache,
		WaitForRecord: true,
		Quicken:       true,
		Fuse:          true,
	})
	results := make([]*ricjs.SessionResult, sessions)
	errs := make([]error, sessions)
	keys := make([]string, sessions)

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		key, script, src := poolLib(s % nkeys)
		keys[s] = key
		wg.Add(1)
		go func(s int, req ricjs.SessionRequest) {
			defer wg.Done()
			results[s], errs[s] = pool.Serve(req)
		}(s, ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		})
	}
	wg.Wait()

	var quickened uint64
	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		res := results[s]
		if res.Output != want[keys[s]] {
			t.Fatalf("session %d (%s): quickened output %q, quickening-off sequential run produced %q",
				s, keys[s], res.Output, want[keys[s]])
		}
		if res.Stats.QuickenedExecutions == 0 {
			t.Fatalf("session %d (%s) executed no quickened instructions", s, keys[s])
		}
		quickened += res.Stats.QuickenedExecutions
	}
	if quickened == 0 {
		t.Fatal("no session quickened anything")
	}
	if stats := pool.Stats(); stats.DegradedSessions != 0 {
		t.Fatalf("DegradedSessions = %d, want 0", stats.DegradedSessions)
	}
}

// TestSessionPoolNoWaitRunsConventionally covers the other single-flight
// policy: contenders that find extraction in flight proceed record-free
// instead of blocking, and still never duplicate the extraction.
func TestSessionPoolNoWaitRunsConventionally(t *testing.T) {
	const (
		nkeys    = 4
		sessions = 32
	)
	want := sequentialOutputs(t, nkeys)

	pool := ricjs.NewSessionPool(ricjs.PoolOptions{})
	results := make([]*ricjs.SessionResult, sessions)
	errs := make([]error, sessions)
	keys := make([]string, sessions)

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		key, script, src := poolLib(s % nkeys)
		keys[s] = key
		wg.Add(1)
		go func(s int, req ricjs.SessionRequest) {
			defer wg.Done()
			results[s], errs[s] = pool.Serve(req)
		}(s, ricjs.SessionRequest{
			Key:     key,
			Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
		})
	}
	wg.Wait()

	for s := 0; s < sessions; s++ {
		if errs[s] != nil {
			t.Fatalf("session %d: %v", s, errs[s])
		}
		if results[s].Output != want[keys[s]] {
			t.Fatalf("session %d (%s): output %q, want %q", s, keys[s], results[s].Output, want[keys[s]])
		}
	}
	stats := pool.Stats()
	if stats.Extractions != nkeys {
		t.Fatalf("Extractions = %d, want exactly %d (single-flight)", stats.Extractions, nkeys)
	}
	if stats.WaitedSessions != 0 {
		t.Fatalf("WaitedSessions = %d, want 0 without WaitForRecord", stats.WaitedSessions)
	}
	// Every session is accounted for by exactly one serving mode.
	if total := stats.Extractions + stats.ReuseHits + stats.ConventionalRuns; total != sessions {
		t.Fatalf("extractions(%d) + reuse(%d) + conventional(%d) = %d, want %d",
			stats.Extractions, stats.ReuseHits, stats.ConventionalRuns, total, sessions)
	}
}

// TestSessionPoolStoreBacked proves the disk layer: pool A extracts and
// persists; a fresh pool B (new process, conceptually) serves the same
// key from one store decode and zero extractions.
func TestSessionPoolStoreBacked(t *testing.T) {
	store, err := ricjs.OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, script, src := poolLib(0)
	req := ricjs.SessionRequest{Key: key, Scripts: []ricjs.SessionScript{{Name: script, Src: src}}}

	poolA := ricjs.NewSessionPool(ricjs.PoolOptions{Store: store})
	resA, err := poolA.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Mode != ricjs.SessionInitial {
		t.Fatalf("cold serve mode = %v, want initial", resA.Mode)
	}
	if keys, _ := store.Keys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("store keys after extraction = %v, want [%s]", keys, key)
	}

	poolB := ricjs.NewSessionPool(ricjs.PoolOptions{Store: store})
	resB, err := poolB.Serve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Mode != ricjs.SessionReuse {
		t.Fatalf("store-backed serve mode = %v, want reuse", resB.Mode)
	}
	if resB.Output != resA.Output {
		t.Fatalf("store-backed output %q != initial output %q", resB.Output, resA.Output)
	}
	if resB.Stats.MissesSaved == 0 {
		t.Fatal("store-backed reuse session averted no misses")
	}
	stats := poolB.Stats()
	if stats.StoreLoads != 1 || stats.Extractions != 0 {
		t.Fatalf("poolB StoreLoads=%d Extractions=%d, want 1/0", stats.StoreLoads, stats.Extractions)
	}
}

// TestSessionPoolFailedExtractionRetries proves a failed Initial run does
// not wedge the key: the entry is abandoned and the next session extracts.
func TestSessionPoolFailedExtractionRetries(t *testing.T) {
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{})
	if _, err := pool.Serve(ricjs.SessionRequest{
		Key:     "k",
		Scripts: []ricjs.SessionScript{{Name: "bad.js", Src: "var ;"}},
	}); err == nil {
		t.Fatal("syntax error must fail the session")
	}
	_, script, src := poolLib(1)
	res, err := pool.Serve(ricjs.SessionRequest{
		Key:     "k",
		Scripts: []ricjs.SessionScript{{Name: script, Src: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ricjs.SessionInitial {
		t.Fatalf("retry mode = %v, want initial (key must stay retryable)", res.Mode)
	}
	if stats := pool.Stats(); stats.Extractions != 1 {
		t.Fatalf("Extractions = %d, want 1", stats.Extractions)
	}
}

// TestSessionPoolRejectsBadRequests covers the request validation.
func TestSessionPoolRejectsBadRequests(t *testing.T) {
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{})
	if _, err := pool.Serve(ricjs.SessionRequest{Scripts: []ricjs.SessionScript{{Name: "a.js", Src: "1;"}}}); err == nil {
		t.Fatal("empty key must be rejected")
	}
	if _, err := pool.Serve(ricjs.SessionRequest{Key: "k"}); err == nil {
		t.Fatal("empty script list must be rejected")
	}
}

// TestSessionPoolDegradedSessionStillServes plants a stale record behind
// a key (extracted from a different version of the script) and shows a
// reuse session degrades gracefully inside the pool: correct output,
// degradation counted, later sessions unaffected.
func TestSessionPoolDegradedSessionStillServes(t *testing.T) {
	store, err := ricjs.OpenRecordStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Record from version 1 of the script...
	v1 := "function P(x){this.x=x;} var ps=[new P(1),new P(2)]; var s=ps[0].x+ps[1].x; print('v1', s);"
	init := ricjs.NewEngine(ricjs.Options{})
	if err := init.Run("app.js", v1); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("app", init.ExtractRecord("app")); err != nil {
		t.Fatal(err)
	}
	// ...served to sessions running version 2.
	v2 := "var greeting = 'hello'; print(greeting, 'from v2');"
	pool := ricjs.NewSessionPool(ricjs.PoolOptions{Store: store})
	res, err := pool.Serve(ricjs.SessionRequest{
		Key:     "app",
		Scripts: []ricjs.SessionScript{{Name: "app.js", Src: v2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("stale record must degrade the session")
	}
	if !strings.Contains(res.Output, "hello from v2") {
		t.Fatalf("degraded session output = %q", res.Output)
	}
	if stats := pool.Stats(); stats.DegradedSessions != 1 {
		t.Fatalf("DegradedSessions = %d, want 1", stats.DegradedSessions)
	}
}

// TestSharedRecordImmutableUnderConcurrentReuse pins the contract the
// pool relies on: N engines reusing one decoded record concurrently leave
// its encoded bytes untouched (all per-session reuse state lives in the
// Reuser, not the Record).
func TestSharedRecordImmutableUnderConcurrentReuse(t *testing.T) {
	key, script, src := poolLib(2)
	cache := ricjs.NewCodeCache()
	init := ricjs.NewEngine(ricjs.Options{Cache: cache})
	if err := init.Run(script, src); err != nil {
		t.Fatal(err)
	}
	rec := init.ExtractRecord(key)
	before := string(rec.Encode())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := ricjs.NewEngine(ricjs.Options{Cache: cache, Record: rec})
			if err := eng.Run(script, src); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if after := string(rec.Encode()); after != before {
		t.Fatal("concurrent reuse mutated the shared record")
	}
}
